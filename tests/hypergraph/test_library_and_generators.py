"""Unit tests for the named hypergraph library and the random generators."""

import pytest

from repro.hypergraph.components import is_connected
from repro.hypergraph.generators import (
    random_acyclic_hypergraph,
    random_cyclic_query_hypergraph,
    random_hypergraph,
)
from repro.hypergraph.library import (
    cycle_hypergraph,
    example4_query,
    four_cycle_query,
    grid_hypergraph,
    hypergraph_bog_star,
    hypergraph_h2,
    hypergraph_h3,
    hypergraph_h3_prime,
    triangle_hypergraph,
)
from repro.baselines.acyclic import is_alpha_acyclic


class TestNamedHypergraphs:
    def test_h2_edges_match_example1(self):
        h2 = hypergraph_h2()
        edge_sets = {edge.vertices for edge in h2.edges}
        assert frozenset({"1", "8"}) in edge_sets
        assert frozenset({"3", "4"}) in edge_sets
        assert frozenset({"1", "2", "a"}) in edge_sets
        assert frozenset({"7", "8", "b"}) in edge_sets
        assert len(edge_sets) == 8

    def test_h3_prime_adds_exactly_one_edge(self):
        h3 = hypergraph_h3()
        h3p = hypergraph_h3_prime()
        assert h3p.num_edges() == h3.num_edges() + 1
        assert frozenset({"3p", "4p"}) in {edge.vertices for edge in h3p.edges}
        assert frozenset({"3p", "4p"}) not in {edge.vertices for edge in h3.edges}

    def test_h3_has_pin_edges_for_every_pair(self):
        h3 = hypergraph_h3()
        pins = [edge for edge in h3.edges if edge.name.startswith("pin_")]
        assert len(pins) == 8 * 10

    def test_cycles_and_grids(self):
        assert cycle_hypergraph(5).num_edges() == 5
        assert grid_hypergraph(2, 3).num_vertices() == 6
        with pytest.raises(ValueError):
            cycle_hypergraph(2)

    def test_triangle_and_four_cycle_are_connected(self):
        assert is_connected(triangle_hypergraph())
        assert is_connected(four_cycle_query())

    def test_example4_partition_covers_all_edges(self):
        hypergraph, partition = example4_query()
        assert set(partition) == set(hypergraph.edge_names)
        assert set(partition.values()) == {"p1", "p2"}

    def test_bog_star_contains_star_vertex_adjacent_to_balloon(self):
        hypergraph = hypergraph_bog_star(n=2, grid_size=2)
        assert "star" in hypergraph.vertices
        star_neighbours = set()
        for edge in hypergraph.incident_edges("star"):
            star_neighbours.update(edge.vertices - {"star"})
        assert all(v.startswith("g_") for v in star_neighbours)
        assert is_connected(hypergraph)

    def test_bog_star_rejects_bad_n(self):
        with pytest.raises(ValueError):
            hypergraph_bog_star(n=0)


class TestGenerators:
    def test_random_hypergraph_has_no_isolated_vertices(self):
        hypergraph = random_hypergraph(12, 6, seed=3)
        assert not hypergraph.has_isolated_vertices()
        assert hypergraph.num_vertices() >= 12

    def test_random_hypergraph_deterministic_for_seed(self):
        a = random_hypergraph(10, 8, seed=42)
        b = random_hypergraph(10, 8, seed=42)
        assert a == b

    def test_random_hypergraph_needs_two_vertices(self):
        with pytest.raises(ValueError):
            random_hypergraph(1, 1)

    def test_random_acyclic_hypergraph_is_acyclic(self):
        for seed in range(5):
            hypergraph = random_acyclic_hypergraph(6, seed=seed)
            assert is_alpha_acyclic(hypergraph)

    def test_random_cyclic_query_has_cycle_core(self):
        hypergraph = random_cyclic_query_hypergraph(5, num_tails=2, seed=1)
        assert not is_alpha_acyclic(hypergraph)
        assert is_connected(hypergraph)

    def test_random_cyclic_query_rejects_short_cycles(self):
        with pytest.raises(ValueError):
            random_cyclic_query_hypergraph(2)
