"""Fault suites for the supervised batch runtime.

The contract under test: any single worker's death — SIGKILL, a hang past
the hard timeout, an exception, garbage output — becomes a structured
failure of one *task attempt*, never of the batch; retries follow the
deterministic backoff schedule; repeated failures walk the degradation
ladder; and a batch resumed from its ledger is equivalent to an
uninterrupted run.

Tests that exercise real process isolation use :func:`toy_runner` (an
instant, scriptable task runner resolved inside the spawned worker) so a
supervisor test costs process startup, not a decomposition solve.
Scheduling-logic tests run with ``isolation="inline"`` and the injectable
``FakeClock``, which makes the backoff schedule exact.
"""

import os

import pytest

from repro.core.certify import Certification
from repro.runtime.checkpoint import BatchLedger, task_fingerprint
from repro.runtime.errors import (
    FAILURE_CRASHED,
    FAILURE_EXHAUSTED_RETRIES,
    FAILURE_INVALID_RESULT,
    FAILURE_TIMEOUT,
    TaskFailure,
)
from repro.runtime.faults import FakeClock
from repro.runtime.supervisor import (
    DEFAULT_LADDER,
    BatchReport,
    DegradationLevel,
    RetryPolicy,
    Supervisor,
    TaskResult,
)

TOY = "tests.test_supervisor:toy_runner"

FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.01, jitter=0.0)


def toy_runner(payload):
    """A scriptable stand-in for the harness runner (spawn-importable)."""
    import time as _time

    if payload.get("work_seconds"):
        _time.sleep(float(payload["work_seconds"]))
    if payload.get("counter_path"):
        with open(payload["counter_path"], "a", encoding="utf-8") as handle:
            handle.write(f"{payload.get('query', '?')}\n")
    if payload.get("interrupt_flag") and os.path.exists(payload["interrupt_flag"]):
        raise KeyboardInterrupt
    if payload["level"] in (payload.get("fail_levels") or ()):
        return {
            "ok": False,
            "reason": "budget_exhausted",
            "error": f"simulated exhaustion at {payload['level']}",
        }
    return {
        "ok": True,
        "query": payload.get("query"),
        "level": payload["level"],
        "mode": payload["mode"],
        "deadline": payload.get("deadline"),
        "max_work": payload.get("max_work"),
        "attempt": payload.get("attempt"),
    }


def task(name="t1", **overrides):
    spec = {"kind": "toy", "query": name}
    spec.update(overrides)
    return spec


def supervisor(**overrides):
    options = dict(task_runner=TOY, hard_timeout=30.0, retry=FAST_RETRY)
    options.update(overrides)
    return Supervisor(**options)


class TestProcessIsolation:
    def test_clean_batch_succeeds(self):
        report = supervisor(max_workers=2).run([task("a"), task("b")])
        assert [r.status for r in report.results] == ["ok", "ok"]
        assert all(r.attempts == 1 and not r.failures for r in report.results)
        assert report.exit_code == 0
        assert report.counts() == {"ok": 2}

    def test_sigkill_mid_batch_is_contained(self):
        tasks = [task("a", faults={"1": {"kind": "sigkill"}}), task("b")]
        report = supervisor(max_workers=2).run(tasks)
        victim, bystander = report.results
        assert victim.status == "ok" and victim.attempts == 2
        assert victim.failures[0]["kind"] == FAILURE_CRASHED
        assert "signal" in victim.failures[0]["message"]
        assert bystander.status == "ok" and not bystander.failures

    def test_hang_is_killed_at_the_hard_timeout(self):
        tasks = [task("a", faults={"1": {"kind": "hang"}})]
        report = supervisor(hard_timeout=1.0).run(tasks)
        result = report.results[0]
        assert result.status == "ok" and result.attempts == 2
        assert result.failures[0]["kind"] == FAILURE_TIMEOUT
        assert result.elapsed >= 1.0

    def test_timeout_escalation_walks_the_whole_ladder(self):
        # Every attempt hangs: each level's attempt is killed from the
        # parent, the ladder is exhausted, and the task is recorded failed
        # with every kill accounted for.
        tasks = [task("a", faults={"*": {"kind": "hang"}})]
        report = supervisor(
            hard_timeout=0.5, retry=RetryPolicy(max_attempts=1, base_delay=0.01, jitter=0.0)
        ).run(tasks)
        result = report.results[0]
        assert result.status == "failed"
        kinds = [f["kind"] for f in result.failures]
        assert kinds == [FAILURE_TIMEOUT] * len(DEFAULT_LADDER) + [
            FAILURE_EXHAUSTED_RETRIES
        ]
        assert report.exit_code == 1

    def test_garbage_reply_is_an_invalid_result(self):
        tasks = [task("a", faults={"1": {"kind": "garbage"}})]
        report = supervisor().run(tasks)
        result = report.results[0]
        assert result.status == "ok"
        assert result.failures[0]["kind"] == FAILURE_INVALID_RESULT

    def test_worker_exception_is_a_structured_crash(self):
        tasks = [task("a", faults={"1": {"kind": "raise", "message": "boom"}})]
        report = supervisor().run(tasks)
        result = report.results[0]
        assert result.status == "ok"
        assert result.failures[0]["kind"] == FAILURE_CRASHED
        assert "boom" in result.failures[0]["message"]


class TestDegradationLadder:
    def test_budget_failures_descend_and_tag_the_level(self):
        # The runner reports in-worker budget exhaustion at full and tight;
        # the decide rung succeeds and the result is tagged with it.
        tasks = [task("a", fail_levels=["full", "tight"], deadline=8.0, max_work=1000)]
        report = supervisor(isolation="inline").run(tasks)
        result = report.results[0]
        assert result.status == "ok"
        assert result.level == "decide"
        assert result.result["mode"] == "decide"
        kinds = [f["kind"] for f in result.failures]
        assert kinds == [FAILURE_TIMEOUT] * 4  # 2 attempts at full + 2 at tight
        # The degraded rungs actually got the scaled-down caps.
        assert result.result["deadline"] == pytest.approx(8.0 * 0.25)
        assert result.result["max_work"] == 250

    def test_exhausted_ladder_is_recorded_failed(self):
        tasks = [task("a", fail_levels=["full", "tight", "decide"])]
        report = supervisor(isolation="inline").run(tasks)
        result = report.results[0]
        assert result.status == "failed"
        assert result.failures[-1]["kind"] == FAILURE_EXHAUSTED_RETRIES
        assert result.attempts == 2 * len(DEFAULT_LADDER)
        assert report.exit_code == 1

    def test_fallback_work_cap_applies_when_task_has_none(self):
        tasks = [task("a", fail_levels=["full"])]
        report = supervisor(isolation="inline").run(tasks)
        result = report.results[0]
        assert result.level == "tight"
        assert result.result["max_work"] == DEFAULT_LADDER[1].fallback_max_work

    def test_custom_single_level_ladder(self):
        ladder = (DegradationLevel("only", mode="ranked"),)
        tasks = [task("a", fail_levels=["only"])]
        report = supervisor(isolation="inline", ladder=ladder).run(tasks)
        assert report.results[0].status == "failed"
        assert report.results[0].attempts == FAST_RETRY.max_attempts


class TestBackoff:
    def test_delay_is_deterministic_and_jitter_bounded(self):
        policy = RetryPolicy(base_delay=0.5, factor=2.0, max_delay=4.0, jitter=0.25)
        for attempt in range(1, 6):
            raw = min(0.5 * 2.0 ** (attempt - 1), 4.0)
            delay = policy.delay("fp", attempt)
            assert delay == policy.delay("fp", attempt)  # deterministic
            assert raw <= delay <= raw * 1.25
        # Distinct fingerprints de-correlate.
        assert policy.delay("fp-a", 1) != policy.delay("fp-b", 1)

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(base_delay=0.1, factor=3.0, max_delay=10.0, jitter=0.0)
        assert [policy.delay("fp", n) for n in (1, 2, 3)] == pytest.approx(
            [0.1, 0.3, 0.9]
        )
        assert policy.delay("fp", 10) == 10.0  # capped

    def test_supervisor_sleeps_follow_the_schedule(self):
        # Inline isolation + FakeClock: every failure's backoff wait is
        # observable and must match RetryPolicy.delay exactly.
        clock = FakeClock()
        sleeps = []

        def sleep(seconds):
            sleeps.append(seconds)
            clock.advance(seconds)

        policy = RetryPolicy(max_attempts=2, base_delay=0.2, factor=2.0, jitter=0.25)
        spec = task("a", fail_levels=["full", "tight", "decide"])
        report = supervisor(
            isolation="inline", retry=policy, clock=clock, sleep=sleep
        ).run([spec])
        assert report.results[0].status == "failed"
        fingerprint = task_fingerprint(spec)
        # 6 failures; the last one exhausts the ladder, so 5 waits.
        assert sleeps == pytest.approx(
            [policy.delay(fingerprint, n) for n in range(1, 6)]
        )


class TestCertification:
    def test_rejected_result_is_quarantined_and_retried(self, tmp_path):
        verdicts = iter(
            [Certification(False, ("injected rejection",)), Certification(True)]
        )

        def certifier(spec, result):
            return next(verdicts)

        ledger = BatchLedger(str(tmp_path / "ledger.jsonl"))
        report = supervisor(isolation="inline", certifier=certifier).run(
            [task("a")], ledger=ledger
        )
        result = report.results[0]
        assert result.status == "ok" and result.attempts == 2
        assert result.failures[0]["kind"] == FAILURE_INVALID_RESULT
        quarantined = BatchLedger(str(tmp_path / "ledger.jsonl")).quarantined()
        assert len(quarantined) == 1
        assert "injected rejection" in quarantined[0]["reason"]

    def test_cached_results_are_recertified_on_resume(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        accept = lambda spec, result: Certification(True)
        report = supervisor(isolation="inline", certifier=accept).run(
            [task("a")], ledger=BatchLedger(path)
        )
        assert report.results[0].status == "ok"
        # A certifier that now rejects the ledger's record forces a re-run.
        verdicts = iter([Certification(False, ("bit rot",)), Certification(True)])
        report2 = supervisor(
            isolation="inline", certifier=lambda s, r: next(verdicts)
        ).run([task("a")], ledger=BatchLedger(path))
        assert report2.results[0].status == "ok"
        assert not report2.results[0].cached


class TestCheckpointResume:
    def test_resume_after_crash_equals_uninterrupted_run(self, tmp_path):
        counter = str(tmp_path / "count.txt")
        specs = [task(n, counter_path=counter) for n in ("a", "b", "c")]

        # Reference: an uninterrupted run.
        reference = supervisor(max_workers=2).run(
            specs, ledger=BatchLedger(str(tmp_path / "ref.jsonl"))
        )

        # Crashing run: task b dies on every attempt (fault directives are
        # non-semantic, so the fingerprint matches the healthy spec).
        path = str(tmp_path / "ledger.jsonl")
        crashing = [
            specs[0],
            dict(specs[1], faults={"*": {"kind": "sigkill"}}),
            specs[2],
        ]
        first = supervisor(
            max_workers=2,
            retry=RetryPolicy(max_attempts=1, base_delay=0.01, jitter=0.0),
        ).run(crashing, ledger=BatchLedger(path))
        assert [r.status for r in first.results] == ["ok", "failed", "ok"]

        runs_before = len(open(counter, encoding="utf-8").readlines())
        resumed = supervisor(max_workers=2).run(specs, ledger=BatchLedger(path))
        assert [r.status for r in resumed.results] == ["ok", "ok", "ok"]
        assert [r.cached for r in resumed.results] == [True, False, True]
        # Only the failed task was re-run...
        runs_after = len(open(counter, encoding="utf-8").readlines())
        assert runs_after == runs_before + 1
        # ...and the final result set equals the uninterrupted run's.
        assert [r.result for r in resumed.results] == [
            r.result for r in reference.results
        ]

    def test_interrupt_lands_as_a_clean_checkpoint(self, tmp_path):
        flag = str(tmp_path / "interrupt.flag")
        open(flag, "w").close()
        path = str(tmp_path / "ledger.jsonl")
        specs = [task("a"), task("b", interrupt_flag=flag)]
        report = supervisor(isolation="inline").run(specs, ledger=BatchLedger(path))
        assert report.interrupted
        assert report.exit_code == 130
        statuses = {r.fingerprint: r.status for r in report.results}
        assert sorted(statuses.values()) == ["interrupted", "ok"]
        # The interrupted task is retried on resume; the completed one is not.
        os.unlink(flag)
        resumed = supervisor(isolation="inline").run(specs, ledger=BatchLedger(path))
        assert not resumed.interrupted
        assert [r.status for r in resumed.results] == ["ok", "ok"]
        assert [r.cached for r in resumed.results] == [True, False]

    def test_duplicate_specs_collapse_to_one_task(self):
        report = supervisor(isolation="inline").run([task("a"), task("a")])
        assert len(report.results) == 1


class TestReport:
    def test_describe_summarises_outcomes_and_kinds(self):
        failure = TaskFailure(FAILURE_TIMEOUT, "too slow", level="full", attempt=1)
        report = BatchReport(
            [
                TaskResult(task("a"), "f1", "ok", level="full", attempts=1),
                TaskResult(
                    task("b"),
                    "f2",
                    "failed",
                    level="decide",
                    attempts=6,
                    failures=[failure.as_record()],
                ),
            ]
        )
        text = report.describe()
        assert "1 ok" in text and "1 failed" in text
        assert "timeout=1" in text
        assert report.failure_kinds() == {"timeout": 1}
        assert report.exit_code == 1

    def test_task_failure_round_trip(self):
        failure = TaskFailure(
            FAILURE_CRASHED, "died", fingerprint="f", level="tight", attempt=3,
            detail="signal 9",
        )
        rebuilt = TaskFailure.from_record(failure.as_record())
        assert rebuilt.kind == FAILURE_CRASHED
        assert rebuilt.level == "tight" and rebuilt.attempt == 3
        assert rebuilt.detail == "signal 9"

    def test_unknown_failure_kind_is_rejected(self):
        with pytest.raises(ValueError):
            TaskFailure("melted", "?")


class TestCacheSeam:
    """The pre-spawn cache probe: hits skip the worker, anything else
    falls through to a normal launch without burning an attempt."""

    def test_hit_satisfies_the_task_without_a_worker(self, tmp_path):
        counter = str(tmp_path / "ran")
        hit = {"ok": True, "query": "a", "level": "cache"}
        report = supervisor(
            isolation="inline", cache_lookup=lambda task: dict(hit)
        ).run([task("a", counter_path=counter)])
        result = report.results[0]
        assert result.status == "ok" and result.level == "cache"
        assert result.attempts == 0 and not result.failures
        assert result.result["query"] == "a"
        assert not result.cached  # "cached" is the ledger-resume flag
        assert not os.path.exists(counter)  # the runner never executed
        assert report.exit_code == 0

    def test_miss_and_lookup_error_fall_through(self, tmp_path):
        for probe in (lambda t: None, lambda t: {"ok": False}, None):
            report = supervisor(isolation="inline", cache_lookup=probe).run(
                [task("a")]
            )
            result = report.results[0]
            assert result.status == "ok" and result.level == "full"
            assert result.attempts == 1 and not result.failures

        def explode(t):
            raise RuntimeError("cache directory on fire")

        report = supervisor(isolation="inline", cache_lookup=explode).run([task("a")])
        result = report.results[0]
        assert result.status == "ok" and result.level == "full"
        assert result.attempts == 1 and not result.failures

    def test_certifier_rejected_hit_burns_no_attempt(self):
        def probe(t):
            return {"ok": True, "query": t.get("query"), "poisoned": True}

        def certifier(spec, payload):
            return Certification(
                not payload.get("poisoned"), ("stale cache entry",)
            )

        report = supervisor(
            isolation="inline", cache_lookup=probe, certifier=certifier
        ).run([task("a")])
        result = report.results[0]
        # The poisoned hit was silently discarded: the real run happened on
        # attempt 1 at the top rung with no recorded failure.
        assert result.status == "ok" and result.level == "full"
        assert result.attempts == 1 and not result.failures

    def test_only_virgin_tasks_consult_the_cache(self):
        calls = []

        def probe(t):
            calls.append(t.get("query"))
            return None

        report = supervisor(isolation="inline", cache_lookup=probe).run(
            [task("a", fail_levels=["full"])]
        )
        result = report.results[0]
        assert result.status == "ok" and result.level == "tight"
        # Retries and degraded rungs re-enter the pending queue, but only
        # the first (virgin) pick probed the cache.
        assert calls == ["a"]
