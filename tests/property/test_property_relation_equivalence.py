"""Equivalence of the columnar relation engine with the tuple-engine spec.

The columnar kernel (:mod:`repro.db.relation`: dictionary-encoded numpy code
columns, ``np.unique`` dedup, packed-key semi-joins, sort/searchsorted join
expansion) must be *observationally identical* to the seed tuple-at-a-time
engine preserved in :mod:`repro.db.reference`: identical row sets, identical
:class:`WorkCounter` totals (reads, writes and operation counts), identical
aggregates, and identical end-to-end Yannakakis runs.  These tests drive
both engines over a seeded grid of random relations, databases and queries
(deterministic, unlike hypothesis's example database), with empty relations,
empty bags and zero-arity relations included explicitly.
"""

import random

import pytest

from repro.db.database import Database
from repro.db.query import Atom, ConjunctiveQuery
from repro.db.reference import ReferenceRelation, as_reference_database
from repro.db.relation import Relation, WorkCounter
from repro.db.stats import CardinalityEstimator
from repro.db.yannakakis import YannakakisExecutor
from repro.decompositions.td import TreeDecomposition

ATTRS = ("a", "b", "c", "d")


def _random_relation_data(rng, min_arity=1, max_arity=3, domain=6, max_rows=30):
    """A random schema over a shared attribute pool plus random rows."""
    arity = rng.randint(min_arity, max_arity)
    attributes = rng.sample(ATTRS, arity)
    num_rows = rng.choice([0, 1, rng.randint(2, max_rows)])
    rows = [
        tuple(rng.randrange(domain) for _ in range(arity)) for _ in range(num_rows)
    ]
    return attributes, rows


def _pair(name, attributes, rows):
    """The same data on both engines (independent interner for the columnar)."""
    return Relation(name, attributes, rows), ReferenceRelation(name, attributes, rows)


def _assert_same_relation(columnar, reference):
    assert tuple(columnar.attributes) == tuple(reference.attributes)
    assert len(columnar) == len(reference)
    assert sorted(columnar.rows) == sorted(reference.rows)


def _assert_same_counter(columnar_counter, reference_counter):
    assert (
        columnar_counter.tuples_read,
        columnar_counter.tuples_written,
        columnar_counter.operations,
    ) == (
        reference_counter.tuples_read,
        reference_counter.tuples_written,
        reference_counter.operations,
    )


SEEDS = list(range(12))


class TestOperatorEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_project_matches_reference(self, seed):
        rng = random.Random(f"proj-{seed}")
        attributes, rows = _random_relation_data(rng)
        columnar, reference = _pair("R", attributes, rows)
        for _ in range(4):
            subset = rng.sample(attributes, rng.randint(0, len(attributes)))
            cc, rc = WorkCounter(), WorkCounter()
            _assert_same_relation(
                columnar.project(subset, counter=cc),
                reference.project(subset, counter=rc),
            )
            _assert_same_counter(cc, rc)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_project_preserves_first_occurrence_order(self, seed):
        rng = random.Random(f"projord-{seed}")
        attributes, rows = _random_relation_data(rng, domain=3)
        columnar, reference = _pair("R", attributes, rows)
        subset = rng.sample(attributes, rng.randint(1, len(attributes)))
        # Not just the same set: the same first-occurrence row order.
        assert columnar.project(subset).rows == reference.project(subset).rows

    @pytest.mark.parametrize("seed", SEEDS)
    def test_semijoin_matches_reference(self, seed):
        rng = random.Random(f"semi-{seed}")
        left_attrs, left_rows = _random_relation_data(rng)
        right_attrs, right_rows = _random_relation_data(rng)
        left_c, left_r = _pair("L", left_attrs, left_rows)
        right_c, right_r = _pair("R", right_attrs, right_rows)
        cc, rc = WorkCounter(), WorkCounter()
        _assert_same_relation(
            left_c.semijoin(right_c, counter=cc),
            left_r.semijoin(right_r, counter=rc),
        )
        _assert_same_counter(cc, rc)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_natural_join_matches_reference(self, seed):
        rng = random.Random(f"join-{seed}")
        left_attrs, left_rows = _random_relation_data(rng)
        right_attrs, right_rows = _random_relation_data(rng)
        left_c, left_r = _pair("L", left_attrs, left_rows)
        right_c, right_r = _pair("R", right_attrs, right_rows)
        cc, rc = WorkCounter(), WorkCounter()
        _assert_same_relation(
            left_c.natural_join(right_c, counter=cc),
            left_r.natural_join(right_r, counter=rc),
        )
        _assert_same_counter(cc, rc)

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_select_rename_and_basics_match_reference(self, seed):
        rng = random.Random(f"misc-{seed}")
        attributes, rows = _random_relation_data(rng)
        columnar, reference = _pair("R", attributes, rows)
        pivot = attributes[0]
        cc, rc = WorkCounter(), WorkCounter()
        _assert_same_relation(
            columnar.select(lambda b: b[pivot] % 2 == 0, counter=cc),
            reference.select(lambda b: b[pivot] % 2 == 0, counter=rc),
        )
        _assert_same_counter(cc, rc)
        mapping = {pivot: "renamed"}
        assert (
            columnar.rename("R2", mapping).rows == reference.rename("R2", mapping).rows
        )
        for attribute in attributes:
            assert columnar.column(attribute) == reference.column(attribute)
            assert columnar.distinct_count(attribute) == reference.distinct_count(
                attribute
            )
        assert columnar.distinct_counts() == reference.distinct_counts()

    @pytest.mark.parametrize("seed", SEEDS[:6])
    def test_aggregates_match_reference(self, seed):
        rng = random.Random(f"agg-{seed}")
        attributes, rows = _random_relation_data(rng)
        columnar, reference = _pair("R", attributes, rows)
        for attribute in attributes:
            for function in ("MIN", "MAX", "COUNT"):
                assert columnar.aggregate(function, attribute) == reference.aggregate(
                    function, attribute
                ), (function, attribute)

    def test_mixed_type_columns_match_reference(self):
        rows = [(1, "x"), (2, "y"), (1, "x"), (3, "z"), (2, "w")]
        columnar, reference = _pair("M", ["n", "s"], rows)
        _assert_same_relation(columnar.project(["s"]), reference.project(["s"]))
        assert columnar.aggregate("MIN", "s") == reference.aggregate("MIN", "s")
        assert columnar.aggregate("MAX", "n") == reference.aggregate("MAX", "n")
        other_c, other_r = _pair("O", ["s"], [("x",), ("z",), ("q",)])
        _assert_same_relation(
            columnar.semijoin(other_c), reference.semijoin(other_r)
        )


class TestEdgeCaseEquivalence:
    def test_empty_relations_through_all_operators(self):
        empty_c, empty_r = _pair("E", ["a", "b"], [])
        full_c, full_r = _pair("F", ["b", "c"], [(1, 2), (2, 3)])
        for cols in (["a"], ["a", "b"], []):
            cc, rc = WorkCounter(), WorkCounter()
            _assert_same_relation(
                empty_c.project(cols, counter=cc), empty_r.project(cols, counter=rc)
            )
            _assert_same_counter(cc, rc)
        for left, right in (
            (empty_c, full_c),
            (full_c, empty_c),
            (empty_c, empty_c),
        ):
            ref_left = {id(empty_c): empty_r, id(full_c): full_r}[id(left)]
            ref_right = {id(empty_c): empty_r, id(full_c): full_r}[id(right)]
            cc, rc = WorkCounter(), WorkCounter()
            _assert_same_relation(
                left.natural_join(right, counter=cc),
                ref_left.natural_join(ref_right, counter=rc),
            )
            _assert_same_counter(cc, rc)
            cc, rc = WorkCounter(), WorkCounter()
            _assert_same_relation(
                left.semijoin(right, counter=cc),
                ref_left.semijoin(ref_right, counter=rc),
            )
            _assert_same_counter(cc, rc)
        assert empty_c.aggregate("MIN", "a") is None
        assert empty_c.aggregate("COUNT", "a") == 0

    def test_zero_arity_relations_match_reference(self):
        # J-relations of empty bags: zero attributes, zero or one (empty) row.
        true_c, true_r = _pair("T", [], [()])
        false_c, false_r = _pair("F", [], [])
        full_c, full_r = _pair("R", ["a"], [(1,), (2,)])
        for zero_c, zero_r in ((true_c, true_r), (false_c, false_r)):
            cc, rc = WorkCounter(), WorkCounter()
            _assert_same_relation(
                full_c.semijoin(zero_c, counter=cc),
                full_r.semijoin(zero_r, counter=rc),
            )
            _assert_same_counter(cc, rc)
            cc, rc = WorkCounter(), WorkCounter()
            _assert_same_relation(
                zero_c.natural_join(full_c, counter=cc),
                zero_r.natural_join(full_r, counter=rc),
            )
            _assert_same_counter(cc, rc)
            _assert_same_relation(zero_c.distinct(), zero_r.distinct())
        assert true_c.aggregate("COUNT", "whatever") == 1

    def test_no_shared_attributes_is_cartesian_on_both_engines(self):
        a_c, a_r = _pair("A", ["x"], [(1,), (2,)])
        b_c, b_r = _pair("B", ["y"], [(3,), (4,), (5,)])
        cc, rc = WorkCounter(), WorkCounter()
        _assert_same_relation(
            a_c.natural_join(b_c, counter=cc), a_r.natural_join(b_r, counter=rc)
        )
        _assert_same_counter(cc, rc)

    def test_duplicate_rows_keep_join_multiplicities(self):
        left_rows = [(1, 2), (1, 2), (2, 3)]
        right_rows = [(2, 9), (2, 9), (2, 8)]
        left_c, left_r = _pair("L", ["a", "b"], left_rows)
        right_c, right_r = _pair("R", ["b", "c"], right_rows)
        _assert_same_relation(
            left_c.natural_join(right_c), left_r.natural_join(right_r)
        )


def _random_database_and_query(seed):
    """A random 3-atom path/triangle query over both engines' databases."""
    rng = random.Random(f"db-{seed}")
    domain = rng.randint(3, 8)

    def rows(arity, count):
        return [
            tuple(rng.randrange(domain) for _ in range(arity)) for _ in range(count)
        ]

    r_rows = rows(2, rng.randint(0, 25))
    s_rows = rows(2, rng.randint(0, 25))
    t_rows = rows(2, rng.randint(0, 25))
    database = Database()
    database.create_table("R", ["a", "b"], r_rows)
    database.create_table("S", ["b", "c"], s_rows)
    database.create_table("T", ["c", "a"], t_rows, primary_key="c")
    triangle = rng.random() < 0.5
    atoms = [
        Atom("R", "R", ("a", "b"), ("x", "y")),
        Atom("S", "S", ("b", "c"), ("y", "z")),
        Atom("T", "T", ("c", "a"), ("z", "x") if triangle else ("z", "w")),
    ]
    aggregate = rng.choice([("MIN", "x"), ("MAX", "y"), ("COUNT", "x"), None])
    query = ConjunctiveQuery(atoms=atoms, aggregate=aggregate, name=f"q{seed}")
    return database, query


def _decompositions_for(query):
    hypergraph = query.hypergraph()
    variables = set(map(str, hypergraph.vertices))
    single = TreeDecomposition.from_bags(hypergraph, [variables], [None])
    decompositions = [single]
    if "w" in variables:
        # A genuine two-bag path decomposition exercising the reducer passes.
        decompositions.append(
            TreeDecomposition.from_bags(
                hypergraph,
                [{"x", "y", "z"}, {"z", "w", "x"}],
                [None, 0],
            )
        )
        # An empty bag riding along exercises the zero-arity J-relation path.
        decompositions.append(
            TreeDecomposition.from_bags(
                hypergraph,
                [variables, set()],
                [None, 0],
            )
        )
    return decompositions


def _assert_same_run(columnar_run, reference_run):
    columnar_result, reference_result = columnar_run.result, reference_run.result
    if hasattr(columnar_result, "rows"):
        assert sorted(columnar_result.rows) == sorted(reference_result.rows)
    else:
        assert columnar_result == reference_result
    assert columnar_run.node_sizes == reference_run.node_sizes
    assert columnar_run.reduced_sizes == reference_run.reduced_sizes
    assert columnar_run.max_intermediate == reference_run.max_intermediate
    _assert_same_counter(columnar_run.counter, reference_run.counter)


class TestYannakakisEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_full_runs_match_reference(self, seed):
        database, query = _random_database_and_query(seed)
        reference_db = as_reference_database(database)
        assert isinstance(
            reference_db.relation("R"), ReferenceRelation
        )  # sanity: the spec engine really is in play
        for decomposition in _decompositions_for(query):
            columnar_run = YannakakisExecutor(database, query).execute(decomposition)
            reference_run = YannakakisExecutor(reference_db, query).execute(
                decomposition
            )
            _assert_same_run(columnar_run, reference_run)

    @pytest.mark.parametrize("seed", range(4))
    def test_materialized_runs_match_reference(self, seed):
        database, query = _random_database_and_query(seed)
        reference_db = as_reference_database(database)
        decomposition = _decompositions_for(query)[0]
        columnar_run = YannakakisExecutor(database, query).execute(
            decomposition, materialize_result=True
        )
        reference_run = YannakakisExecutor(reference_db, query).execute(
            decomposition, materialize_result=True
        )
        _assert_same_run(columnar_run, reference_run)

    def test_empty_database_runs_match_reference(self):
        database = Database()
        database.create_table("R", ["a", "b"], [])
        database.create_table("S", ["b", "c"], [(1, 2)])
        query = ConjunctiveQuery(
            atoms=[
                Atom("R", "R", ("a", "b"), ("x", "y")),
                Atom("S", "S", ("b", "c"), ("y", "z")),
            ],
            aggregate=("MIN", "x"),
            name="empty",
        )
        decomposition = TreeDecomposition.from_bags(
            query.hypergraph(), [{"x", "y", "z"}], [None]
        )
        columnar_run = YannakakisExecutor(database, query).execute(decomposition)
        reference_run = YannakakisExecutor(
            as_reference_database(database), query
        ).execute(decomposition)
        assert columnar_run.result is None
        _assert_same_run(columnar_run, reference_run)

    def test_estimator_statistics_match_reference(self):
        database, query = _random_database_and_query(3)
        reference_db = as_reference_database(database)
        columnar_estimator = CardinalityEstimator(database)
        reference_estimator = CardinalityEstimator(reference_db)
        for name in database.relation_names():
            columnar_stats = columnar_estimator.statistics(name)
            reference_stats = reference_estimator.statistics(name)
            assert columnar_stats.row_count == reference_stats.row_count
            assert columnar_stats.distinct_counts == reference_stats.distinct_counts
        order_c = columnar_estimator.greedy_join_order(query.atoms)
        order_r = reference_estimator.greedy_join_order(query.atoms)
        assert [a.alias for a in order_c] == [a.alias for a in order_r]
