"""Property-based consistency checks between the different CTD solvers.

Algorithm 1 (plain CandidateTD), Algorithm 2 (constrained/preference DP) and
the ranked enumerator are three routes to the same decision problem; on the
same candidate bag set they must agree on feasibility, and everything they
return must be a valid CompNF CTD over those bags.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.candidate_bags import soft_candidate_bags
from repro.core.constrained import ConstrainedCTDSolver, constrained_candidate_td
from repro.core.constraints import ConnectedCoverConstraint
from repro.core.ctd import CandidateTDSolver, candidate_td
from repro.core.enumerate import enumerate_ctds
from repro.core.preferences import (
    CostPreference,
    LexicographicPreference,
    MaxBagSizePreference,
    MonotoneCostPreference,
    NodeCountPreference,
)

from tests.property.test_property_invariants import small_hypergraphs

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSolverAgreement:
    @SETTINGS
    @given(small_hypergraphs(max_vertices=6, max_edges=6))
    def test_algorithm1_and_algorithm2_agree_on_feasibility(self, hypergraph):
        bags = soft_candidate_bags(hypergraph, 2)
        plain = candidate_td(hypergraph, bags)
        optimised = constrained_candidate_td(
            hypergraph, bags, preference=NodeCountPreference()
        )
        assert (plain is None) == (optimised is None)
        if optimised is not None:
            assert optimised.is_valid()
            assert optimised.uses_bags_from(bags)

    @SETTINGS
    @given(small_hypergraphs(max_vertices=6, max_edges=6))
    def test_enumerator_agrees_with_algorithm1(self, hypergraph):
        bags = soft_candidate_bags(hypergraph, 2)
        plain = candidate_td(hypergraph, bags)
        enumerated = enumerate_ctds(hypergraph, bags, limit=3)
        assert (plain is None) == (not enumerated)
        for decomposition in enumerated:
            assert decomposition.is_valid()
            assert decomposition.uses_bags_from(bags)
            assert decomposition.is_component_normal_form()

    @SETTINGS
    @given(small_hypergraphs(max_vertices=6, max_edges=6))
    def test_preference_optimum_is_no_worse_than_enumerated_options(self, hypergraph):
        bags = soft_candidate_bags(hypergraph, 2)
        preference = MaxBagSizePreference()
        best = constrained_candidate_td(hypergraph, bags, preference=preference)
        enumerated = enumerate_ctds(hypergraph, bags, preference=preference, limit=5)
        if best is None:
            assert not enumerated
            return
        assert enumerated
        # The dynamic program's result is never worse than any enumerated
        # option (the enumeration is exact, so its head is the optimum).
        worst_enumerated = max(preference.key(d) for d in enumerated)
        assert preference.key(best) <= worst_enumerated + 1e-9
        assert preference.key(best) == preference.key(enumerated[0])

    @SETTINGS
    @given(small_hypergraphs(max_vertices=6, max_edges=6))
    def test_constrained_results_always_satisfy_the_constraint(self, hypergraph):
        constraint = ConnectedCoverConstraint(hypergraph, 2)
        bags = soft_candidate_bags(hypergraph, 2)
        result = constrained_candidate_td(hypergraph, bags, constraint=constraint)
        if result is not None:
            assert result.is_valid()
            assert constraint.holds_recursively(result)

    @SETTINGS
    @given(small_hypergraphs(max_vertices=6, max_edges=6))
    def test_unconstrained_algorithm2_matches_algorithm1_block_for_block(
        self, hypergraph
    ):
        # With the trivial constraint and preference, Algorithm 2's fixpoint
        # must satisfy exactly the blocks Algorithm 1 satisfies.
        bags = soft_candidate_bags(hypergraph, 2)
        plain = CandidateTDSolver(hypergraph, bags)
        constrained = ConstrainedCTDSolver(hypergraph, bags)
        assert set(plain.satisfied_blocks()) == set(constrained.satisfied_blocks())
        assert plain.decide() == constrained.decide()

    @SETTINGS
    @given(small_hypergraphs(max_vertices=5, max_edges=5))
    def test_enumerator_best_matches_constrained_optimum(self, hypergraph):
        # The enumeration is exact, so its head and Algorithm 2's optimum
        # carry the same key.
        bags = soft_candidate_bags(hypergraph, 2)
        preference = LexicographicPreference(
            [MaxBagSizePreference(), NodeCountPreference()]
        )
        solver = ConstrainedCTDSolver(hypergraph, bags, preference=preference)
        enumerated = enumerate_ctds(hypergraph, bags, preference=preference, limit=1)
        optimal_key = solver.optimal_key()
        if optimal_key is None:
            assert not enumerated
        else:
            assert enumerated
            assert preference.key(enumerated[0]) == optimal_key

    @SETTINGS
    @given(small_hypergraphs(max_vertices=5, max_edges=5))
    def test_lazy_enumerator_head_matches_constrained_optimum(self, hypergraph):
        # The lazy (order-monotone, Eq. 6-shaped) path of the enumerator
        # against Algorithm 2's monotone fast path; integer costs compare
        # exactly.
        bags = soft_candidate_bags(hypergraph, 2)
        preference = MonotoneCostPreference(
            node_cost=lambda bag: len(bag) ** 2,
            edge_cost=lambda parent, child: len(parent & child) + 1,
        )
        solver = ConstrainedCTDSolver(hypergraph, bags, preference=preference)
        enumerated = enumerate_ctds(hypergraph, bags, preference=preference, limit=1)
        optimal_key = solver.optimal_key()
        if optimal_key is None:
            assert not enumerated
        else:
            assert enumerated
            assert preference.key(enumerated[0]) == optimal_key

    @SETTINGS
    @given(small_hypergraphs(max_vertices=5, max_edges=5))
    def test_enumerator_head_matches_optimum_under_non_monotone_preference(
        self, hypergraph
    ):
        # A cost callable that never declares the monotone protocol: the
        # enumerator's exhaustive fallback and Algorithm 2's materialising
        # path must still agree on the optimal key.  (The cost is a sum over
        # bags, so the per-block dynamic program is exact for it.)
        bags = soft_candidate_bags(hypergraph, 2)
        preference = CostPreference(
            lambda td: sum(len(bag) ** 2 for bag in td.bags())
        )
        assert not preference.monotone
        solver = ConstrainedCTDSolver(hypergraph, bags, preference=preference)
        enumerated = enumerate_ctds(hypergraph, bags, preference=preference, limit=1)
        optimal_key = solver.optimal_key()
        if optimal_key is None:
            assert not enumerated
        else:
            assert enumerated
            assert preference.key(enumerated[0]) == optimal_key
