"""Equivalence of the sharded (parallel) paths with the serial solver stack.

The intra-solve sharding layer (:mod:`repro.runtime.parallel`) stripes
candidate-bag enumeration and probe-table construction by starting edge /
block id and merges shard results deterministically; the batch scheduler
(:mod:`repro.runtime.scheduler`) answers duplicate shapes by certified
fan-out.  Both claim *observational identity* with the serial code:

* component-union, cover-union and candidate-bag sets are byte-identical
  to serial for every shard count (inline stripes and the real
  shared-memory worker pool),
* probe tables — including ``parents`` adjacency order — are identical,
* a budget-exhausted sharded run satisfies the same anytime contract as
  a serial exhaustion (a sound subset, sticky non-complete status),
* batch-plan results do not depend on the worker count, and the
  per-query answers do not depend on the order queries arrive in.

The grids are seeded and deterministic, matching the house property-suite
style.
"""

import json
import os
import random

import pytest

from repro.core.candidate_bags import (
    SoftBagGenerator,
    _component_union_masks,
    _cover_union_masks,
)
from repro.core.options import SolverCore
from repro.core.solve import SolveRequest
from repro.hypergraph.generators import (
    random_cyclic_query_hypergraph,
    random_hypergraph,
)
from repro.hypergraph.hypergraph import Edge, Hypergraph
from repro.hypergraph.library import cycle_hypergraph, hypergraph_h2
from repro.runtime import parallel
from repro.runtime.budget import Budget
from repro.runtime.parallel import (
    get_pool,
    parallel_component_union_masks,
    parallel_cover_union_masks,
    parallel_probe_tables,
    reap_stale_segments,
    shutdown_pools,
)
from repro.runtime.scheduler import BatchSolvePlan, run_plan

SHARD_COUNTS = (1, 2, 3, 5)


def _instances():
    instances = [
        ("h2", hypergraph_h2(), 2),
        ("c8", cycle_hypergraph(8), 2),
        ("cyclic-q9", random_cyclic_query_hypergraph(9, 3, seed=4), 2),
    ]
    for seed in range(4):
        rng = random.Random(3000 + seed)
        instances.append(
            (
                f"rand-{seed}",
                random_hypergraph(
                    rng.randint(6, 16),
                    rng.randint(4, 14),
                    max_edge_size=4,
                    seed=seed,
                ),
                rng.choice((2, 3)),
            )
        )
    return instances


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_striped_component_unions_match_serial(shards):
    for name, hypergraph, k in _instances():
        serial = _component_union_masks(hypergraph, k)
        sharded = parallel_component_union_masks(hypergraph, k, shards)
        assert sharded == serial, (name, shards)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_striped_cover_unions_match_serial(shards):
    for name, hypergraph, k in _instances():
        masks = sorted(hypergraph.bitsets.edge_masks)
        serial = _cover_union_masks(masks, k)
        sharded = parallel_cover_union_masks(masks, k, shards)
        assert sharded == serial, (name, shards)


@pytest.mark.parametrize("shards", (2, 3))
def test_sharded_candidate_bags_match_serial(shards):
    for name, hypergraph, k in _instances():
        for level in (0, 1):
            serial = SoftBagGenerator(hypergraph, k).candidate_bags(level)
            sharded = SoftBagGenerator(hypergraph, k, shards=shards).candidate_bags(
                level
            )
            assert sharded == serial, (name, shards, level)


@pytest.mark.parametrize("shards", (2, 3))
def test_sharded_probe_tables_match_serial(shards):
    for name, hypergraph, k in _instances():
        bags = SoftBagGenerator(hypergraph, k).candidate_bags(0)
        serial = SolverCore(hypergraph, bags).probe_tables()
        sharded = SolverCore(hypergraph, bags, shards=shards).probe_tables()
        assert sharded == serial, (name, shards)


def test_budget_exhausted_shards_yield_sound_subset():
    """Exhaustion in a shard gives the serial anytime contract: a subset."""
    hypergraph = random_hypergraph(18, 14, max_edge_size=3, seed=9)
    full = _component_union_masks(hypergraph, 2)
    for shards in (1, 2, 3):
        budget = Budget(max_work=60)
        partial = parallel_component_union_masks(hypergraph, 2, shards, budget=budget)
        assert partial <= full, shards
        assert budget.exhausted, shards
        assert budget.status != "complete", shards


def test_real_pool_matches_serial_and_leaves_no_segments(monkeypatch):
    """The shared-memory worker-pool path is byte-identical and leak-free."""
    # Small instances would normally stay inline; force the pool path.
    monkeypatch.setattr(parallel, "MIN_PARALLEL_ITEMS", 1)
    hypergraph = random_hypergraph(20, 16, max_edge_size=3, seed=17)
    k = 2
    pool = get_pool(2)
    try:
        serial_components = _component_union_masks(hypergraph, k)
        pooled_components = parallel_component_union_masks(
            hypergraph, k, shards=2, pool=pool
        )
        assert pooled_components == serial_components

        bags = SoftBagGenerator(hypergraph, k).candidate_bags(0)
        core = SolverCore(hypergraph, bags)
        serial_tables = core.probe_tables()
        pooled_tables = parallel_probe_tables(core.index, shards=2, pool=pool)
        assert pooled_tables == serial_tables
    finally:
        shutdown_pools()
    leftovers = [
        name
        for name in os.listdir("/dev/shm")
        if name.startswith("repro-shm-")
    ]
    assert leftovers == []


def test_reaper_unlinks_dead_pid_segments():
    """A segment named for a dead creator pid is unlinked by the reaper."""
    from multiprocessing import shared_memory

    # A pid that is certainly dead: spawn-and-wait a child and reuse its pid.
    import subprocess

    proc = subprocess.Popen(["sleep", "0"])
    proc.wait()
    dead = proc.pid
    name = f"repro-shm-{dead}-deadbeef"
    segment = shared_memory.SharedMemory(name=name, create=True, size=64)
    segment.close()
    # Ownership is being handed to the (dead) pid: drop this process's
    # resource-tracker registration so the reaper is the one to unlink it.
    from multiprocessing import resource_tracker

    resource_tracker.unregister(segment._name, "shared_memory")
    try:
        removed = reap_stale_segments()
        assert name in removed
        assert not os.path.exists(f"/dev/shm/{name}")
    finally:
        try:
            shared_memory.SharedMemory(name=name, create=False).unlink()
        except FileNotFoundError:
            pass


def _batch_tasks():
    def hg(edges):
        return Hypergraph(
            [Edge(name, frozenset(vs)) for name, vs in edges.items()]
        )

    cycle = {"e1": ["a", "b"], "e2": ["b", "c"], "e3": ["c", "d"], "e4": ["d", "a"]}
    twin = {"f1": ["p", "q"], "f2": ["q", "r"], "f3": ["r", "s"], "f4": ["s", "p"]}
    tri = {"t1": ["x", "y"], "t2": ["y", "z"], "t3": ["z", "x"]}
    tasks = []
    for name, shape, mode in (
        ("cycle-1", cycle, "enumerate"),
        ("tri-1", tri, "optimal"),
        ("cycle-2", twin, "enumerate"),
        ("cycle-3", cycle, "enumerate"),
        ("tri-2", tri, "optimal"),
    ):
        request = SolveRequest(
            hypergraph=hg(shape),
            mode=mode,
            width=2,
            constraint="concov",
            limit=2 if mode == "enumerate" else 1,
            label=name,
        )
        tasks.append(
            {"kind": "solve", "query": name, "request": request.to_payload()}
        )
    return tasks


def _strip(wire):
    return {k: v for k, v in wire.items() if k not in ("cache", "mode", "level")}


def test_batch_results_independent_of_worker_count():
    tasks = _batch_tasks()
    inline = run_plan(BatchSolvePlan.from_tasks(tasks), workers=0, cache=None)
    try:
        pooled = run_plan(BatchSolvePlan.from_tasks(tasks), workers=2, cache=None)
    finally:
        shutdown_pools()
    a = json.dumps([_strip(r) for r in inline.results], sort_keys=True, default=str)
    b = json.dumps([_strip(r) for r in pooled.results], sort_keys=True, default=str)
    assert a == b
    assert pooled.counters["fanout"] == inline.counters["fanout"] > 0


def test_batch_answers_independent_of_schedule_order():
    """Reordering the query set must not change any query's answer.

    Representative choice (and therefore the exact witness served to a
    fanned-out member) is input-order dependent by design; the *answers*
    — decided, width, number of certified decompositions — are not.
    """
    tasks = _batch_tasks()
    forward = run_plan(BatchSolvePlan.from_tasks(tasks), cache=None)
    reversed_tasks = list(reversed(tasks))
    backward = run_plan(BatchSolvePlan.from_tasks(reversed_tasks), cache=None)
    by_query_forward = {r["query"]: r for r in forward.results}
    by_query_backward = {r["query"]: r for r in backward.results}
    assert by_query_forward.keys() == by_query_backward.keys()
    for query, fwd in by_query_forward.items():
        bwd = by_query_backward[query]
        assert fwd["decided"] == bwd["decided"], query
        assert fwd["width"] == bwd["width"], query
        assert len(fwd["decompositions"]) == len(bwd["decompositions"]), query
