"""Equivalence of the bitset kernel with the frozenset reference implementations.

The kernel (:mod:`repro.hypergraph.bitset` and the mask-based rewrites of
components / candidate bags / covers / Algorithm 1) must be *observationally
identical* to the seed frozenset code, which is preserved verbatim in
:mod:`repro.core.reference`.  These tests drive both paths over a seeded
grid of random hypergraphs (deterministic, unlike hypothesis's example
database) and assert byte-identical components and bag sets, identical
cover sizes and identical CandidateTD decisions.
"""

import random

import pytest

from repro.core.candidate_bags import SoftBagGenerator, soft_candidate_bags
from repro.core.covers import greedy_edge_cover, minimum_edge_cover
from repro.core.ctd import CandidateTDSolver, candidate_td
from repro.core.reference import (
    ReferenceSoftBagGenerator,
    reference_candidate_td_decide,
    reference_edge_components,
    reference_greedy_edge_cover,
    reference_minimum_edge_cover,
    reference_soft_candidate_bags,
    reference_vertex_components,
)
from repro.hypergraph.bitset import (
    VertexIndexer,
    iter_bits,
    pairwise_and_masks,
    popcount,
)
from repro.hypergraph.components import edge_components, vertex_components
from repro.hypergraph.generators import random_hypergraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.library import (
    cycle_hypergraph,
    hypergraph_h2,
    triangle_hypergraph,
)


def _random_instances():
    """A deterministic grid of small-to-medium random hypergraphs."""
    instances = []
    for seed in range(8):
        rng = random.Random(1000 + seed)
        num_vertices = rng.randint(4, 14)
        num_edges = rng.randint(2, 12)
        instances.append(
            (
                f"rand-{seed}",
                random_hypergraph(num_vertices, num_edges, max_edge_size=4, seed=seed),
            )
        )
    instances.append(("h2", hypergraph_h2()))
    instances.append(("c6", cycle_hypergraph(6)))
    instances.append(("triangle", triangle_hypergraph()))
    # Duplicate edges, singleton edges and isolated vertices are legal.
    instances.append(
        (
            "degenerate",
            Hypergraph(
                {"a": ["x", "y"], "b": ["x", "y"], "c": ["z"], "d": ["y", "z"]},
                vertices=["w"],
            ),
        )
    )
    return instances


INSTANCES = _random_instances()


def _separators(hypergraph, rng):
    """A mix of separators: empty, single edges, edge unions, random subsets."""
    vertices = sorted(map(str, hypergraph.vertices))
    seps = [frozenset(), frozenset(vertices)]
    edges = list(hypergraph.edges)
    for edge in edges[:4]:
        seps.append(edge.vertices)
    if len(edges) >= 2:
        seps.append(edges[0].vertices | edges[-1].vertices)
    for _ in range(4):
        size = rng.randint(1, max(1, len(vertices) // 2))
        seps.append(frozenset(rng.sample(vertices, size)))
    # Separators may mention vertices outside V(H).
    seps.append(frozenset(list(vertices[:1]) + ["not-a-vertex"]))
    return seps


class TestIndexerRoundTrip:
    @pytest.mark.parametrize("name,hypergraph", INSTANCES)
    def test_mask_frozenset_round_trip(self, name, hypergraph):
        indexer = hypergraph.bitsets.indexer
        rng = random.Random(name)
        vertices = sorted(map(str, hypergraph.vertices))
        for _ in range(20):
            subset = frozenset(rng.sample(vertices, rng.randint(0, len(vertices))))
            mask = indexer.to_mask(subset)
            assert indexer.to_frozenset(mask) == subset
            assert popcount(mask) == len(subset)
            assert {indexer.vertex(b) for b in iter_bits(mask)} == set(subset)

    def test_indexer_order_is_stable(self):
        indexer = VertexIndexer(["b", "a", "c"])
        assert list(indexer) == ["a", "b", "c"]
        assert indexer.universe == 0b111


class TestPairwiseAndMasks:
    """All three pairwise-AND paths (python loop, uint64, n-limb) agree."""

    @pytest.mark.parametrize("bits", [40, 64, 150, 300])
    def test_volume_paths_match_brute_force(self, bits):
        # 160 × 120 = 19200 pairs clears the numpy-volume threshold, so ≤64
        # bits exercises the single-word path and >64 bits the n-limb layout.
        rng = random.Random(f"pam-{bits}")
        left = [rng.getrandbits(bits) for _ in range(160)]
        right = [rng.getrandbits(bits) for _ in range(120)]
        expected = {a & b for a in left for b in right} - {0}
        assert pairwise_and_masks(left, right) == expected

    def test_small_inputs_use_python_loop(self):
        rng = random.Random("pam-small")
        left = [rng.getrandbits(90) for _ in range(7)]
        right = [rng.getrandbits(90) for _ in range(5)]
        expected = {a & b for a in left for b in right} - {0}
        assert pairwise_and_masks(left, right) == expected
        assert pairwise_and_masks([], right) == set()
        assert pairwise_and_masks(left, []) == set()


class TestComponentEquivalence:
    @pytest.mark.parametrize("name,hypergraph", INSTANCES)
    def test_vertex_components_match_reference(self, name, hypergraph):
        rng = random.Random(f"vc-{name}")
        for separator in _separators(hypergraph, rng):
            assert vertex_components(hypergraph, separator) == (
                reference_vertex_components(hypergraph, separator)
            ), f"separator {sorted(map(str, separator))}"

    @pytest.mark.parametrize("name,hypergraph", INSTANCES)
    def test_edge_components_match_reference(self, name, hypergraph):
        rng = random.Random(f"ec-{name}")
        for separator in _separators(hypergraph, rng):
            assert edge_components(hypergraph, separator) == (
                reference_edge_components(hypergraph, separator)
            ), f"separator {sorted(map(str, separator))}"


class TestCandidateBagEquivalence:
    @pytest.mark.parametrize("name,hypergraph", INSTANCES)
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_soft_bags_match_reference(self, name, hypergraph, k):
        assert soft_candidate_bags(hypergraph, k) == reference_soft_candidate_bags(
            hypergraph, k
        )

    @pytest.mark.parametrize("name,hypergraph", INSTANCES[:6])
    def test_iterated_levels_match_reference(self, name, hypergraph):
        k = 2
        reference = ReferenceSoftBagGenerator(hypergraph, k)
        generator = SoftBagGenerator(hypergraph, k)
        for level in (0, 1, 2):
            assert generator.candidate_bags(level) == reference.candidate_bags(level)
            assert generator.subedges(level) == reference.subedges(level)

    @pytest.mark.parametrize("name,hypergraph", INSTANCES[:4])
    def test_fixpoint_matches_reference(self, name, hypergraph):
        k = 2
        assert SoftBagGenerator(hypergraph, k).fixpoint_candidate_bags(
            max_level=5
        ) == ReferenceSoftBagGenerator(hypergraph, k).fixpoint_candidate_bags(
            max_level=5
        )


class TestCoverEquivalence:
    @pytest.mark.parametrize("name,hypergraph", INSTANCES)
    def test_minimum_cover_sizes_match_reference(self, name, hypergraph):
        rng = random.Random(f"cov-{name}")
        vertices = sorted(map(str, hypergraph.vertices))
        bags = [frozenset(), frozenset(vertices)]
        for _ in range(10):
            bags.append(
                frozenset(rng.sample(vertices, rng.randint(1, len(vertices))))
            )
        for bag in bags:
            reference = reference_minimum_edge_cover(hypergraph, bag)
            cover = minimum_edge_cover(hypergraph, bag)
            if reference is None:
                assert cover is None
            else:
                assert cover is not None
                assert len(cover) == len(reference)
                covered = set()
                for edge in cover:
                    covered.update(edge.vertices)
                assert bag <= covered
            for bound in (1, 2):
                ref_bounded = reference_minimum_edge_cover(
                    hypergraph, bag, upper_bound=bound
                )
                new_bounded = minimum_edge_cover(hypergraph, bag, upper_bound=bound)
                assert (ref_bounded is None) == (new_bounded is None)

    @pytest.mark.parametrize("name,hypergraph", INSTANCES)
    def test_greedy_cover_matches_reference_exactly(self, name, hypergraph):
        # The greedy tie-breaking (first max-gain edge in edge order) is
        # deterministic in both implementations, so covers match edge-for-edge.
        rng = random.Random(f"greedy-{name}")
        vertices = sorted(map(str, hypergraph.vertices))
        for _ in range(10):
            bag = frozenset(rng.sample(vertices, rng.randint(1, len(vertices))))
            assert greedy_edge_cover(hypergraph, bag) == reference_greedy_edge_cover(
                hypergraph, bag
            )


class TestCandidateTDEquivalence:
    @pytest.mark.parametrize("name,hypergraph", INSTANCES)
    @pytest.mark.parametrize("k", [1, 2])
    def test_decide_matches_reference(self, name, hypergraph, k):
        bags = soft_candidate_bags(hypergraph, k)
        expected = reference_candidate_td_decide(hypergraph, bags)
        solver = CandidateTDSolver(hypergraph, bags)
        assert solver.decide() == expected
        if expected:
            decomposition = solver.solve()
            assert decomposition is not None
            assert decomposition.is_valid()
            assert decomposition.uses_bags_from(bags)
            assert decomposition.is_component_normal_form()

    @pytest.mark.parametrize("name,hypergraph", INSTANCES[:6])
    def test_decide_matches_reference_on_restricted_bags(self, name, hypergraph):
        # Thin the bag set so unsatisfiable blocks and waiter re-probes are
        # exercised, not just the easy all-bags instances.
        rng = random.Random(f"ctd-{name}")
        bags = sorted(
            soft_candidate_bags(hypergraph, 2),
            key=lambda bag: (len(bag), sorted(map(str, bag))),
        )
        for fraction in (0.3, 0.6):
            subset = [bag for bag in bags if rng.random() < fraction]
            expected = reference_candidate_td_decide(hypergraph, subset)
            assert CandidateTDSolver(hypergraph, subset).decide() == expected
            assert (candidate_td(hypergraph, subset) is not None) == expected
