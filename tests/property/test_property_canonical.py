"""Property-based tests (hypothesis) for hypergraph canonical forms.

The cache's correctness rests on three claims about
:func:`repro.hypergraph.canonical.canonical_form`:

1. **Isomorphism invariance** — any vertex relabeling and edge
   renaming/reordering/duplication yields the same fingerprint and the
   same canonical edge encoding;
2. **Permutation soundness** — bags translate to canonical indices and
   back without loss, across *different* labelings of the same shape;
3. **End to end** — a CTD solved under one labeling, stored in canonical
   indices and mapped into another labeling's vertices, certifies against
   that other hypergraph.

Each claim is exercised over random small hypergraphs under random
relabelings.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.certify import certify_ctd
from repro.core.cache import DecompositionCache
from repro.core.solve import SolveRequest, execute
from repro.hypergraph.canonical import canonical_form
from repro.hypergraph.hypergraph import Hypergraph

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def hypergraph_with_relabeling(draw, max_vertices=7, max_edges=6):
    """A random connected-ish hypergraph plus a random isomorphic copy."""
    num_vertices = draw(st.integers(min_value=2, max_value=max_vertices))
    vertices = [f"v{i}" for i in range(num_vertices)]
    num_edges = draw(st.integers(min_value=1, max_value=max_edges))
    edges = {}
    for i in range(num_edges):
        size = draw(st.integers(min_value=1, max_value=min(3, num_vertices)))
        edges[f"e{i}"] = draw(
            st.lists(
                st.sampled_from(vertices), min_size=size, max_size=size, unique=True
            )
        )
    covered = {v for verts in edges.values() for v in verts}
    for extra, vertex in enumerate(v for v in vertices if v not in covered):
        partner = vertices[0] if vertex != vertices[0] else vertices[1]
        edges[f"iso{extra}"] = [vertex, partner]
    original = Hypergraph(edges)

    # A random isomorphic copy: permuted vertex names (a disjoint alphabet,
    # so no accidental fixed points), shuffled edge names and vertex order.
    permutation = draw(st.permutations(range(num_vertices)))
    rename = {f"v{i}": f"w{permutation[i]}" for i in range(num_vertices)}
    relabeled = {
        f"r{j}": draw(st.permutations([rename[v] for v in verts]))
        for j, (name, verts) in enumerate(sorted(edges.items()))
    }
    return original, Hypergraph(relabeled), rename


class TestFingerprintInvariance:
    @SETTINGS
    @given(hypergraph_with_relabeling())
    def test_isomorphic_hypergraphs_agree(self, pair):
        original, relabeled, _ = pair
        first = canonical_form(original)
        second = canonical_form(relabeled)
        assert first.fingerprint == second.fingerprint
        assert first.encoding == second.encoding

    @SETTINGS
    @given(hypergraph_with_relabeling())
    def test_duplicate_edges_are_invisible(self, pair):
        original, _, _ = pair
        doubled = {edge.name: sorted(edge.vertices, key=str) for edge in original.edges}
        for edge in original.edges:
            doubled[f"dup_{edge.name}"] = sorted(edge.vertices, key=str)
        assert (
            canonical_form(Hypergraph(doubled)).fingerprint
            == canonical_form(original).fingerprint
        )

    @SETTINGS
    @given(hypergraph_with_relabeling())
    def test_structural_change_changes_the_fingerprint(self, pair):
        original, _, _ = pair
        whole = frozenset(original.vertices)
        if any(edge.vertices == whole for edge in original.edges):
            return  # the "everything" edge already exists: no new structure
        grown = {edge.name: sorted(edge.vertices, key=str) for edge in original.edges}
        grown["everything"] = sorted(original.vertices, key=str)
        assert (
            canonical_form(Hypergraph(grown)).fingerprint
            != canonical_form(original).fingerprint
        )


class TestPermutationSoundness:
    @SETTINGS
    @given(hypergraph_with_relabeling())
    def test_bags_round_trip_within_one_labeling(self, pair):
        original, _, _ = pair
        canonical = canonical_form(original)
        for edge in original.edges:
            indices = canonical.to_canonical_bag(edge.vertices)
            assert indices == sorted(indices)
            assert canonical.from_canonical_bag(indices) == edge.vertices

    @SETTINGS
    @given(hypergraph_with_relabeling())
    def test_bags_transfer_between_labelings(self, pair):
        # A vertex set written in canonical indices under one labeling and
        # read back under another — the exact translation a cache hit
        # performs — preserves the edge structure.  (It need not reproduce
        # one particular renaming: with automorphic shapes the transfer is
        # only canonical up to an automorphism, which certification is
        # indifferent to.)
        original, relabeled, _ = pair
        first = canonical_form(original)
        second = canonical_form(relabeled)
        relabeled_edge_sets = {edge.vertices for edge in relabeled.edges}
        for edge in original.edges:
            indices = first.to_canonical_bag(edge.vertices)
            assert second.from_canonical_bag(indices) in relabeled_edge_sets


class TestEndToEnd:
    @SETTINGS
    @given(hypergraph_with_relabeling())
    def test_cached_ctd_certifies_under_any_labeling(self, tmp_path_factory, pair):
        original, relabeled, _ = pair
        width = max(1, original.num_edges())
        store = DecompositionCache(str(tmp_path_factory.mktemp("canonical-prop")))
        first = execute(SolveRequest(hypergraph=original, width=width), cache=store)
        assert first.decided  # width = |E| always admits a CTD
        second = execute(SolveRequest(hypergraph=relabeled, width=width), cache=store)
        assert second.decided
        assert second.cache_status == "hit"
        assert store.stats.rejected == 0
        certification = certify_ctd(relabeled, second.decomposition, width_claim=width)
        assert certification, certification.describe()
