"""Equivalence of the exact lazy any-k enumerator with its brute-force spec.

The rewritten enumerator in :mod:`repro.core.enumerate` (lazy Lawler-style
successor streams for order-monotone preferences, exhaustive fragment-memoised
tables otherwise) and :func:`repro.core.reference.reference_enumerate_ctds`
(exhaustive generation + sort, materialising a full decomposition per option)
are two routes to the same ranking.  Across random hypergraphs and the
constraint/preference grid they must return the *same decompositions in the
same order* — keys use exact integer arithmetic and ties are broken by the
canonical fragment sort key, so the sequences are compared structurally,
element by element, not merely as key multisets.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.candidate_bags import soft_candidate_bags
from repro.core.enumerate import enumerate_ctds
from repro.core.constraints import (
    ConnectedCoverConstraint,
    ShallowCyclicityConstraint,
)
from repro.core.preferences import (
    LexicographicPreference,
    MaxBagSizePreference,
    MonotoneCostPreference,
    NodeCountPreference,
)
from repro.core.reference import reference_enumerate_ctds

from tests.property.test_property_invariants import small_hypergraphs

# The reference enumerator is exhaustive (it materialises every option of
# every block), so the instances stay a notch smaller than in the other
# equivalence suites.
SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def synthetic_cost_preference():
    # Integer-valued node and edge costs: exact arithmetic, so the composed
    # keys of the lazy streams and the rebuilt keys of the reference compare
    # with ``==`` and the full sequence order is reproducible.
    return MonotoneCostPreference(
        node_cost=lambda bag: len(bag) ** 2,
        edge_cost=lambda parent, child: len(parent & child) + 1,
    )


def make_constraint(kind, hypergraph):
    if kind == "none":
        return None
    if kind == "concov":
        return ConnectedCoverConstraint(hypergraph, 2)
    if kind == "shallow":
        return ShallowCyclicityConstraint(hypergraph, depth=1)
    raise ValueError(kind)


def make_preference(kind):
    if kind == "cost":
        return synthetic_cost_preference()
    if kind == "bag-size":
        return MaxBagSizePreference()
    if kind == "lexicographic":
        return LexicographicPreference(
            [MaxBagSizePreference(), NodeCountPreference()]
        )
    raise ValueError(kind)


def assert_same_ranked_enumeration(hypergraph, constraint_kind, preference_kind):
    bags = soft_candidate_bags(hypergraph, 2)
    constraint = make_constraint(constraint_kind, hypergraph)
    preference = make_preference(preference_kind)
    enumerated = enumerate_ctds(
        hypergraph, bags, constraint=constraint, preference=preference, limit=6
    )
    reference = reference_enumerate_ctds(
        hypergraph, bags, constraint=constraint, preference=preference, limit=6
    )
    # Same decompositions in the same (key, canonical tie) order.
    assert [d.canonical_form() for d in enumerated] == [
        d.canonical_form() for d in reference
    ]
    assert [preference.key(d) for d in enumerated] == [
        preference.key(d) for d in reference
    ]
    for decomposition in enumerated:
        assert decomposition.is_valid()
        assert decomposition.uses_bags_from(bags)
        assert decomposition.is_component_normal_form()
        if constraint is not None:
            assert constraint.holds_recursively(decomposition)


class TestEnumerateEquivalence:
    @pytest.mark.parametrize("constraint_kind", ["none", "concov", "shallow"])
    @pytest.mark.parametrize("preference_kind", ["cost", "bag-size", "lexicographic"])
    def test_grid_on_random_hypergraphs(self, constraint_kind, preference_kind):
        @SETTINGS
        @given(small_hypergraphs(max_vertices=5, max_edges=5))
        def run(hypergraph):
            assert_same_ranked_enumeration(
                hypergraph, constraint_kind, preference_kind
            )

        run()

    @SETTINGS
    @given(small_hypergraphs(max_vertices=5, max_edges=5))
    def test_unranked_enumeration_matches_reference(self, hypergraph):
        # No preference: pure canonical tie-break order, the reproducibility
        # path the experiment harness samples its random pools from.
        bags = soft_candidate_bags(hypergraph, 2)
        enumerated = enumerate_ctds(hypergraph, bags, limit=6)
        reference = reference_enumerate_ctds(hypergraph, bags, limit=6)
        assert [d.canonical_form() for d in enumerated] == [
            d.canonical_form() for d in reference
        ]

    @SETTINGS
    @given(small_hypergraphs(max_vertices=5, max_edges=5))
    def test_limit_is_a_prefix_of_the_full_ranking(self, hypergraph):
        bags = soft_candidate_bags(hypergraph, 2)
        preference = synthetic_cost_preference()
        wide = enumerate_ctds(hypergraph, bags, preference=preference, limit=8)
        narrow = enumerate_ctds(hypergraph, bags, preference=preference, limit=3)
        assert [d.canonical_form() for d in narrow] == [
            d.canonical_form() for d in wide[:3]
        ]
