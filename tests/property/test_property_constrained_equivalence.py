"""Equivalence of the event-driven Algorithm 2 with its round-robin reference.

The worklist solver in :mod:`repro.core.constrained` and the preserved seed
dynamic program :func:`repro.core.reference.reference_constrained_ctd` are two
routes to the ``(𝒞, ≤)``-CandidateTD fixpoint.  Across random hypergraphs and
the paper's constraint/preference grid they must return the same decide
answer and — the fixpoint of a monotone preference being unique — the same
optimal preference key.  The returned decompositions themselves may differ
structurally (ties under ≤ are broken by probe order), so both are checked
for validity and compliance instead of structural equality.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.candidate_bags import soft_candidate_bags
from repro.core.constrained import ConstrainedCTDSolver
from repro.core.constraints import (
    ConnectedCoverConstraint,
    ShallowCyclicityConstraint,
)
from repro.core.preferences import (
    LexicographicPreference,
    MaxBagSizePreference,
    MonotoneCostPreference,
    NodeCountPreference,
    ShallowCyclicityPreference,
)
from repro.core.reference import reference_constrained_ctd

from tests.property.test_property_invariants import small_hypergraphs

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def synthetic_cost_preference():
    # Integer-valued node and edge costs: exact arithmetic, so the composed
    # keys of the worklist solver and the rebuilt keys of the reference can
    # be compared with ``==``.
    return MonotoneCostPreference(
        node_cost=lambda bag: len(bag) ** 2,
        edge_cost=lambda parent, child: len(parent & child) + 1,
    )


def make_constraint(kind, hypergraph):
    if kind == "none":
        return None
    if kind == "concov":
        return ConnectedCoverConstraint(hypergraph, 2)
    if kind == "shallow":
        return ShallowCyclicityConstraint(hypergraph, depth=1)
    raise ValueError(kind)


def make_preference(kind, hypergraph):
    if kind == "cost":
        return synthetic_cost_preference()
    if kind == "bag-size":
        return MaxBagSizePreference()
    if kind == "lexicographic":
        return LexicographicPreference(
            [MaxBagSizePreference(), NodeCountPreference()]
        )
    if kind == "shallow":
        return ShallowCyclicityPreference(hypergraph)
    raise ValueError(kind)


def assert_equivalent(hypergraph, constraint_kind, preference_kind):
    bags = soft_candidate_bags(hypergraph, 2)
    constraint = make_constraint(constraint_kind, hypergraph)
    preference = make_preference(preference_kind, hypergraph)
    reference = reference_constrained_ctd(
        hypergraph, bags, constraint=constraint, preference=preference
    )
    solver = ConstrainedCTDSolver(
        hypergraph, bags, constraint=constraint, preference=preference
    )
    result = solver.solve()
    assert (reference is None) == (result is None)
    if result is None:
        return
    assert result.is_valid()
    assert result.uses_bags_from(bags)
    if constraint is not None:
        assert constraint.holds_recursively(result)
        assert constraint.holds_recursively(reference)
    assert solver.optimal_key() == preference.key(reference)
    assert preference.key(result) == preference.key(reference)


class TestConstrainedEquivalence:
    @pytest.mark.parametrize("constraint_kind", ["none", "concov", "shallow"])
    @pytest.mark.parametrize("preference_kind", ["cost", "bag-size", "lexicographic"])
    def test_grid_on_random_hypergraphs(self, constraint_kind, preference_kind):
        @SETTINGS
        @given(small_hypergraphs(max_vertices=6, max_edges=6))
        def run(hypergraph):
            assert_equivalent(hypergraph, constraint_kind, preference_kind)

        run()

    @SETTINGS
    @given(small_hypergraphs(max_vertices=6, max_edges=6))
    def test_shallow_cyclicity_preference_complete_pair(self, hypergraph):
        assert_equivalent(hypergraph, "shallow", "shallow")
