"""Property-based tests (hypothesis) for the core invariants.

The strategies generate small random hypergraphs / relations so each example
stays fast while still exploring a wide structural variety.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.acyclic import is_alpha_acyclic
from repro.core.candidate_bags import SoftBagGenerator, soft_candidate_bags
from repro.core.covers import connected_edge_set, minimum_edge_cover
from repro.core.ctd import candidate_td
from repro.core.soft import shw_leq, soft_hypertree_width
from repro.hypergraph.components import (
    component_vertices,
    edge_components,
    vertex_components,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.db.relation import Relation

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# -- strategies ---------------------------------------------------------------


@st.composite
def small_hypergraphs(draw, max_vertices=7, max_edges=7):
    num_vertices = draw(st.integers(min_value=2, max_value=max_vertices))
    vertices = [f"v{i}" for i in range(num_vertices)]
    num_edges = draw(st.integers(min_value=1, max_value=max_edges))
    edges = {}
    for i in range(num_edges):
        size = draw(st.integers(min_value=1, max_value=min(3, num_vertices)))
        chosen = draw(
            st.lists(
                st.sampled_from(vertices), min_size=size, max_size=size, unique=True
            )
        )
        edges[f"e{i}"] = chosen
    # Attach uncovered vertices so there are no isolated vertices.
    covered = {v for verts in edges.values() for v in verts}
    extra = 0
    for vertex in vertices:
        if vertex not in covered:
            partner = vertices[0] if vertex != vertices[0] else vertices[1]
            edges[f"iso{extra}"] = [vertex, partner]
            extra += 1
    return Hypergraph(edges)


@st.composite
def small_relations(draw):
    arity = draw(st.integers(min_value=1, max_value=3))
    attributes = [f"a{i}" for i in range(arity)]
    rows = draw(
        st.lists(
            st.tuples(*[st.integers(min_value=0, max_value=5) for _ in range(arity)]),
            max_size=20,
        )
    )
    return Relation("R", attributes, rows)


# -- hypergraph invariants ----------------------------------------------------------


class TestComponentProperties:
    @SETTINGS
    @given(small_hypergraphs(), st.data())
    def test_vertex_components_partition_the_non_separator_vertices(self, hypergraph, data):
        separator = data.draw(
            st.sets(st.sampled_from(sorted(map(str, hypergraph.vertices))), max_size=3)
        )
        components = vertex_components(hypergraph, separator)
        union = set()
        for component in components:
            assert not (component & set(separator))
            assert not (union & component)
            union |= component
        assert union == set(hypergraph.vertices) - set(separator)

    @SETTINGS
    @given(small_hypergraphs(), st.data())
    def test_every_non_separator_edge_is_in_exactly_one_component(self, hypergraph, data):
        separator = data.draw(
            st.sets(st.sampled_from(sorted(map(str, hypergraph.vertices))), max_size=3)
        )
        components = edge_components(hypergraph, separator)
        seen = {}
        for component in components:
            for edge in component:
                assert edge.name not in seen
                seen[edge.name] = True
        outside = {
            edge.name
            for edge in hypergraph.edges
            if edge.vertices - set(separator)
        }
        assert set(seen) == outside


class TestCoverProperties:
    @SETTINGS
    @given(small_hypergraphs(), st.data())
    def test_minimum_cover_covers_and_is_minimal_size(self, hypergraph, data):
        bag = data.draw(
            st.sets(st.sampled_from(sorted(map(str, hypergraph.vertices))), max_size=4)
        )
        cover = minimum_edge_cover(hypergraph, bag)
        if cover is None:
            # Some vertex of the bag is not covered by any edge: impossible
            # here since generated hypergraphs have no isolated vertices.
            assert not bag
            return
        union = set()
        for edge in cover:
            union.update(edge.vertices)
        assert set(bag) <= union
        assert connected_edge_set(cover) in (True, False)  # total function

    @SETTINGS
    @given(small_hypergraphs())
    def test_single_edges_are_their_own_cover(self, hypergraph):
        for edge in hypergraph.edges:
            cover = minimum_edge_cover(hypergraph, edge.vertices)
            assert len(cover) == 1


class TestSoftBagProperties:
    @SETTINGS
    @given(small_hypergraphs())
    def test_soft_bags_contain_all_edges_and_respect_cover_bound(self, hypergraph):
        bags = soft_candidate_bags(hypergraph, 2)
        for edge in hypergraph.edges:
            assert edge.vertices in bags
        for bag in bags:
            cover = minimum_edge_cover(hypergraph, bag, upper_bound=2)
            assert cover is not None and len(cover) <= 2

    @SETTINGS
    @given(small_hypergraphs())
    def test_soft_levels_are_monotone(self, hypergraph):
        generator = SoftBagGenerator(hypergraph, 2, max_subedges=300)
        level0 = generator.candidate_bags(0)
        level1 = generator.candidate_bags(1)
        assert level0 <= level1


class TestSoftWidthProperties:
    @SETTINGS
    @given(small_hypergraphs())
    def test_shw_witness_is_a_valid_ctd(self, hypergraph):
        width, decomposition = soft_hypertree_width(hypergraph)
        assert decomposition.is_valid()
        assert decomposition.uses_bags_from(soft_candidate_bags(hypergraph, width))
        assert width >= 1

    @SETTINGS
    @given(small_hypergraphs())
    def test_acyclic_iff_shw_1(self, hypergraph):
        acyclic = is_alpha_acyclic(hypergraph)
        assert (shw_leq(hypergraph, 1) is not None) == acyclic

    @SETTINGS
    @given(small_hypergraphs())
    def test_candidate_td_output_uses_candidate_bags(self, hypergraph):
        bags = soft_candidate_bags(hypergraph, 2)
        decomposition = candidate_td(hypergraph, bags)
        if decomposition is not None:
            assert decomposition.is_valid()
            assert decomposition.uses_bags_from(bags)
            assert decomposition.is_component_normal_form()


class TestRelationProperties:
    @SETTINGS
    @given(small_relations())
    def test_projection_is_idempotent_and_shrinking(self, relation):
        projected = relation.project(list(relation.attributes))
        assert len(projected) <= len(relation)
        assert projected.rows == projected.project(list(projected.attributes)).rows

    @SETTINGS
    @given(small_relations(), small_relations())
    def test_semijoin_is_a_subset_of_the_left_input(self, left, right):
        reduced = left.semijoin(right)
        assert set(reduced.rows) <= set(left.rows)
        assert len(reduced) <= len(left)

    @SETTINGS
    @given(small_relations(), small_relations())
    def test_join_then_project_equals_semijoin(self, left, right):
        right = right.rename("S", {a: a for a in right.attributes})
        joined = left.natural_join(right)
        projected = joined.project(list(left.attributes))
        semi = left.semijoin(right).project(list(left.attributes))
        assert set(projected.rows) == set(semi.rows)
