"""Cross-layer differential tests pinning the query front door.

:func:`repro.db.frontdoor.run_query` stitches parse → hypergraph →
(cached) CTD → Yannakakis into one call; these tests prove the whole
pipeline is observationally identical to two independent oracles on
hypothesis-generated conjunctive queries over small random databases:

* **direct Yannakakis** on the hand-built hypergraph (bypassing the
  front door's planning and cache routing entirely), and
* the **tuple-engine spec** (:mod:`repro.db.reference`): a naive
  rename-join-project evaluation with no decomposition at all.

and that its answers are *byte-identical* across cold-cache, warm-cache
and cache-disabled runs — the decomposition cache may change where the
CTD comes from, never what the query returns.

The suites together drive well over 200 generated queries (see the
``max_examples`` settings), covering self-joins, disconnected
(Cartesian) queries, empty relations, aggregate and full-row outputs,
and SQL-text entry through the hardened parser.
"""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cache import DecompositionCache
from repro.core.solve import SolveRequest, execute
from repro.db.database import Database
from repro.db.frontdoor import canonical_rows, run_query
from repro.db.query import Atom, ConjunctiveQuery
from repro.db.reference import as_reference_database
from repro.db.yannakakis import YannakakisExecutor

VARIABLES = ("x0", "x1", "x2", "x3", "x4")
DOMAIN = 5

COMMON_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def database_and_query(draw):
    """A small random database plus a conjunctive query over it.

    One base table per distinct relation; atoms may alias the same table
    twice (a self-join).  Variables within an atom are distinct (the
    engine's atom contract); across atoms they overlap freely, so the
    query hypergraph ranges from a connected chain to disconnected
    Cartesian factors.
    """
    num_atoms = draw(st.integers(min_value=1, max_value=4))
    database = Database()
    atoms = []
    table_arities = {}
    for index in range(num_atoms):
        # Either introduce a fresh table or self-join an existing one.
        if table_arities and draw(st.booleans()):
            table = draw(st.sampled_from(sorted(table_arities)))
            arity = table_arities[table]
        else:
            table = f"T{len(table_arities)}"
            arity = draw(st.integers(min_value=1, max_value=3))
            num_rows = draw(st.integers(min_value=0, max_value=12))
            columns = [
                draw(
                    st.lists(
                        st.integers(min_value=0, max_value=DOMAIN - 1),
                        min_size=num_rows,
                        max_size=num_rows,
                    )
                )
                for _ in range(arity)
            ]
            database.create_table_columns(
                table, [f"{table.lower()}c{j}" for j in range(arity)], columns
            )
            table_arities[table] = arity
        attributes = tuple(f"{table.lower()}c{j}" for j in range(arity))
        variables = tuple(
            draw(
                st.lists(
                    st.sampled_from(VARIABLES),
                    min_size=arity,
                    max_size=arity,
                    unique=True,
                )
            )
        )
        atoms.append(
            Atom(
                alias=f"a{index}",
                relation=table,
                attributes=attributes,
                variables=variables,
            )
        )
    query = ConjunctiveQuery(atoms=atoms, name="generated")
    used = query.variables()
    aggregate = draw(
        st.one_of(
            st.none(),
            st.tuples(
                st.sampled_from(["MIN", "MAX", "COUNT"]), st.sampled_from(used)
            ),
        )
    )
    query.aggregate = aggregate
    return database, query


def reference_answer(database, query):
    """The ground-truth oracle: textbook CQ semantics, no engine at all.

    Enumerates satisfying variable assignments by nested iteration over
    raw table rows (handling self-joins, repeated variables within an
    atom and Cartesian factors by construction).  Returns ``(sorted
    distinct full rows over sorted(variables), value)`` where ``value``
    follows the engine's aggregate semantics (COUNT = number of distinct
    satisfying assignments, MIN/MAX over the variable's column, ``None``
    on an empty join).
    """
    assignments = [{}]
    for atom in query.atoms:
        relation = database.relation(atom.relation)
        rows = [dict(zip(relation.attributes, row)) for row in relation.rows]
        extended = []
        for assignment in assignments:
            for values in rows:
                binding = dict(assignment)
                for attribute, variable in zip(atom.attributes, atom.variables):
                    value = values[attribute]
                    if variable in binding and binding[variable] != value:
                        break
                    binding[variable] = value
                else:
                    extended.append(binding)
        assignments = extended
    columns = sorted(query.variables())
    rows = sorted({tuple(binding[c] for c in columns) for binding in assignments})
    if query.aggregate is None:
        return rows, len(rows)
    function, variable = query.aggregate
    if function == "COUNT":
        return rows, len(rows)
    if not rows:
        return rows, None
    index = columns.index(variable)
    values = [row[index] for row in rows]
    return rows, (min(values) if function == "MIN" else max(values))


def frontdoor_answer(database, query, cache=None):
    result = run_query(query, database, cache=cache)
    assert result.outcome.complete
    return result


class TestPipelineAgainstOracles:
    @settings(max_examples=120, **COMMON_SETTINGS)
    @given(database_and_query())
    def test_matches_reference_engine_and_direct_yannakakis(self, case):
        database, query = case
        expected_rows, expected_value = reference_answer(database, query)

        result = frontdoor_answer(database, query)
        if query.aggregate is None:
            assert result.rows == expected_rows
        assert result.value == expected_value

        # Oracle 2: direct Yannakakis on the hand-built hypergraph,
        # bypassing the front door entirely (aggregate-free copy so the
        # executor materialises the full join instead of a scalar).
        full_query = ConjunctiveQuery(
            atoms=query.atoms, aggregate=None, name=query.name
        )
        solve = execute(
            SolveRequest(hypergraph=full_query.hypergraph(), mode="soft-width"),
            cache=None,
        )
        assert solve.width == result.width
        run = YannakakisExecutor(database, full_query).execute(
            solve.decomposition, materialize_result=True
        )
        direct_rows = canonical_rows(run.result, sorted(query.variables()))
        assert direct_rows == expected_rows

        # Oracle 3: the same plan executed on the tuple-engine spec.
        reference_run = YannakakisExecutor(
            as_reference_database(database), full_query
        ).execute(solve.decomposition, materialize_result=True)
        reference_rows = sorted(
            set(reference_run.result.project(sorted(query.variables())).rows)
        )
        assert reference_rows == expected_rows

    @settings(max_examples=40, **COMMON_SETTINGS)
    @given(database_and_query())
    def test_explicit_width_matches_least_width_answer(self, case):
        database, query = case
        least = frontdoor_answer(database, query)
        pinned = run_query(query, database, width=least.width, cache=None)
        assert pinned.rows == least.rows
        assert pinned.value == least.value


class TestCacheTransparency:
    @settings(max_examples=60, **COMMON_SETTINGS)
    @given(database_and_query(), st.data())
    def test_cold_warm_and_disabled_runs_are_byte_identical(self, case, data):
        database, query = case
        cache_dir = os.path.join(
            os.environ.get("TMPDIR", "/tmp"),
            f"ctd-prop-{abs(hash(tuple(a.alias + a.relation for a in query.atoms)))}",
        )
        cache = DecompositionCache(cache_dir)
        cache.clean()
        try:
            cold = frontdoor_answer(database, query, cache=cache)
            warm = frontdoor_answer(database, query, cache=cache)
            disabled = frontdoor_answer(database, query, cache=None)
        finally:
            cache.clean()
        assert cold.rows == warm.rows == disabled.rows
        assert cold.value == warm.value == disabled.value
        assert cold.width == warm.width == disabled.width
        assert disabled.provenance in ("solve", "none")


@st.composite
def sql_case(draw):
    """A random schema with globally unique column names plus a SQL query."""
    num_tables = draw(st.integers(min_value=2, max_value=3))
    database = Database()
    all_columns = []
    for index in range(num_tables):
        arity = draw(st.integers(min_value=1, max_value=2))
        num_rows = draw(st.integers(min_value=0, max_value=10))
        names = [f"t{index}c{j}" for j in range(arity)]
        columns = [
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=DOMAIN - 1),
                    min_size=num_rows,
                    max_size=num_rows,
                )
            )
            for _ in range(arity)
        ]
        database.create_table_columns(f"T{index}", names, columns)
        all_columns.extend(names)
    num_conditions = draw(st.integers(min_value=1, max_value=3))
    conditions = [
        f"{draw(st.sampled_from(all_columns))} = "
        f"{draw(st.sampled_from(all_columns))}"
        for _ in range(num_conditions)
    ]
    aggregate = draw(st.sampled_from(["COUNT", "MIN", "MAX"]))
    target = draw(st.sampled_from(all_columns))
    sql = (
        f"SELECT {aggregate}({target}) FROM "
        + ", ".join(f"T{index}" for index in range(num_tables))
        + " WHERE "
        + " AND ".join(conditions)
    )
    return database, sql


class TestSqlEntry:
    """SQL-text queries through the hardened parser match the oracle."""

    @settings(max_examples=60, **COMMON_SETTINGS)
    @given(sql_case())
    def test_sql_text_matches_reference_engine(self, case):
        database, sql = case
        result = run_query(sql, database, cache=None)
        assert result.outcome.complete
        _, expected_value = reference_answer(database, result.plan.query)
        assert result.value == expected_value
