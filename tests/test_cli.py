"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main
from repro.hypergraph.io import to_hyperbench
from repro.hypergraph.library import four_cycle_query, hypergraph_h2, triangle_hypergraph


@pytest.fixture
def triangle_file(tmp_path):
    path = tmp_path / "triangle.hg"
    path.write_text(to_hyperbench(triangle_hypergraph()))
    return str(path)


@pytest.fixture
def h2_file(tmp_path):
    path = tmp_path / "h2.hg"
    path.write_text(to_hyperbench(hypergraph_h2()))
    return str(path)


@pytest.fixture
def four_cycle_file(tmp_path):
    path = tmp_path / "c4.hg"
    path.write_text(to_hyperbench(four_cycle_query()))
    return str(path)


def run_cli(arguments):
    out = io.StringIO()
    code = main(arguments, out=out)
    return code, out.getvalue()


class TestWidthCommand:
    def test_shw_of_triangle(self, triangle_file):
        code, output = run_cli(["width", triangle_file])
        assert code == 0
        assert "shw = 2" in output

    def test_hw_of_h2(self, h2_file):
        code, output = run_cli(["width", h2_file, "--measure", "hw"])
        assert code == 0
        assert "hw = 3" in output

    def test_ghw_of_h2(self, h2_file):
        code, output = run_cli(["width", h2_file, "--measure", "ghw"])
        assert code == 0
        assert "ghw = 2" in output

    def test_treewidth_heuristic(self, triangle_file):
        code, output = run_cli(["width", triangle_file, "--measure", "tw"])
        assert code == 0
        assert "tw = 2" in output


class TestDecomposeCommand:
    def test_decompose_triangle(self, triangle_file):
        code, output = run_cli(["decompose", triangle_file, "-k", "2"])
        assert code == 0
        assert "[" in output

    def test_decompose_infeasible_width(self, triangle_file):
        code, output = run_cli(["decompose", triangle_file, "-k", "1"])
        assert code == 1
        assert "no decomposition" in output

    def test_decompose_with_concov(self, four_cycle_file):
        code, output = run_cli(["decompose", four_cycle_file, "-k", "2", "--concov"])
        assert code == 0
        # The Cartesian-product bag never appears under ConCov.
        assert "w, x, y, z" not in output


class TestStatsCommand:
    def test_stats_output(self, h2_file):
        code, output = run_cli(["stats", h2_file])
        assert code == 0
        assert "vertices: 10" in output
        assert "edges: 8" in output


class TestWorkloadCommands:
    def test_build_list_clean_cycle(self, tmp_path):
        cache = str(tmp_path / "cache")
        code, output = run_cli(
            ["workloads", "build", "--workload", "tpcds", "--scale", "0.3", "--cache", cache]
        )
        assert code == 0
        assert "cold build" in output
        code, output = run_cli(
            ["workloads", "build", "--workload", "tpcds", "--scale", "0.3", "--cache", cache]
        )
        assert code == 0
        assert "snapshot hit" in output
        code, output = run_cli(["workloads", "list", "--cache", cache, "--strict"])
        assert code == 0
        assert "tpcds" in output and "0 stale" in output
        code, output = run_cli(["workloads", "clean", "--cache", cache])
        assert code == 0
        assert "removed 1" in output

    def test_build_force_rebuilds(self, tmp_path):
        cache = str(tmp_path / "cache")
        arguments = [
            "workloads", "build", "--workload", "lsqb", "--scale", "0.3", "--cache", cache
        ]
        assert run_cli(arguments)[0] == 0
        code, output = run_cli(arguments + ["--force"])
        assert code == 0
        assert "cold build" in output

    def test_list_empty_cache(self, tmp_path):
        code, output = run_cli(["workloads", "list", "--cache", str(tmp_path / "nope")])
        assert code == 0
        assert "no snapshots" in output

    def test_strict_list_fails_on_stale_snapshot(self, tmp_path, corrupt_snapshot_version):
        cache = str(tmp_path / "cache")
        run_cli(
            ["workloads", "build", "--workload", "hetionet", "--scale", "0.3", "--cache", cache]
        )
        path = next(
            str(p) for p in (tmp_path / "cache").iterdir() if p.suffix == ".npz"
        )
        corrupt_snapshot_version(path)
        code, output = run_cli(["workloads", "list", "--cache", cache])
        assert code == 0  # without --strict stale is only reported
        assert "STALE" in output
        code, output = run_cli(["workloads", "list", "--cache", cache, "--strict"])
        assert code == 1
        assert "1 stale" in output


class TestExperimentCommands:
    def test_experiment_q_hto3(self):
        code, output = run_cli(["experiment", "q_hto3", "--scale", "0.15", "--limit", "3"])
        assert code == 0
        assert "Baseline" in output
        assert "q_hto3" in output

    def test_unknown_query_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["experiment", "q_nope"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            run_cli([])
