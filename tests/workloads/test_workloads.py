"""Unit tests for the synthetic workload generators and the query registry."""

import pytest

from repro.workloads.hetionet import EDGE_TABLES, build_hetionet_database, hetionet_query
from repro.workloads.lsqb import build_lsqb_database, lsqb_query_qlb
from repro.workloads.registry import benchmark_queries, benchmark_query
from repro.workloads.tpcds import build_tpcds_database, tpcds_query_qds


class TestTpcds:
    def test_schema_and_primary_keys(self):
        database = build_tpcds_database(scale=0.1)
        assert database.primary_key("customer") == "c_customer_sk"
        assert database.primary_key("warehouse") == "w_warehouse_sk"
        assert database.primary_key("web_sales") is None
        assert set(database.relation("web_sales").attributes) == {
            "ws_bill_customer_sk",
            "ws_quantity",
        }

    def test_deterministic_for_seed(self):
        a = build_tpcds_database(scale=0.1, seed=5)
        b = build_tpcds_database(scale=0.1, seed=5)
        assert a.relation("web_sales").rows == b.relation("web_sales").rows

    def test_scale_controls_size(self):
        small = build_tpcds_database(scale=0.1)
        large = build_tpcds_database(scale=0.5)
        assert len(large.relation("web_sales")) > len(small.relation("web_sales"))

    def test_foreign_keys_are_consistent(self):
        database = build_tpcds_database(scale=0.1)
        customers = {row[0] for row in database.relation("customer").rows}
        for row in database.relation("web_sales").rows:
            assert row[0] in customers

    def test_query_is_cyclic(self):
        database = build_tpcds_database(scale=0.05)
        query = tpcds_query_qds(database)
        from repro.baselines.acyclic import is_alpha_acyclic

        assert not is_alpha_acyclic(query.hypergraph())


class TestHetionet:
    def test_all_edge_tables_present(self):
        database = build_hetionet_database(scale=0.2)
        for table in EDGE_TABLES:
            assert table in database
            assert database.relation(table).attributes == ("s", "d")

    def test_edges_have_no_self_loops(self):
        database = build_hetionet_database(scale=0.2)
        for table in EDGE_TABLES:
            for source, target in database.relation(table).rows:
                assert source != target

    def test_degree_distribution_is_skewed(self):
        database = build_hetionet_database(scale=1.0)
        relation = database.relation("hetio45173")
        counts = {}
        for source, _ in relation.rows:
            counts[source] = counts.get(source, 0) + 1
        top = sorted(counts.values(), reverse=True)[:5]
        assert sum(top) > 0.2 * len(relation)

    def test_queries_have_expected_widths(self):
        database = build_hetionet_database(scale=0.1)
        for name in ("q_hto", "q_hto2", "q_hto3", "q_hto4"):
            query = hetionet_query(database, name)
            assert query.aggregate is not None


class TestLsqb:
    def test_schema(self):
        database = build_lsqb_database(scale=0.2)
        assert database.primary_key("City") == "CityId"
        assert database.primary_key("Person") == "PersonId"
        assert len(database.relation("Person_knows_Person")) > 0

    def test_city_references_valid(self):
        database = build_lsqb_database(scale=0.2)
        cities = {row[0] for row in database.relation("City").rows}
        for _, city in database.relation("Person").rows:
            assert city in cities

    def test_query_parses_with_six_atoms(self):
        database = build_lsqb_database(scale=0.2)
        query = lsqb_query_qlb(database)
        assert len(query.atoms) == 6


class TestRegistry:
    def test_six_queries_in_table1_order(self):
        names = [entry.name for entry in benchmark_queries()]
        assert names == ["q_ds", "q_hto", "q_hto2", "q_hto3", "q_hto4", "q_lb"]

    def test_widths_match_table1(self):
        widths = {entry.name: entry.width for entry in benchmark_queries()}
        assert widths["q_ds"] == 2
        assert widths["q_lb"] == 3

    def test_lookup_and_load(self):
        entry = benchmark_query("q_hto3")
        database, query = entry.load(scale=0.1)
        assert query.name == "q_hto3"
        assert len(query.atoms) == 4
        with pytest.raises(KeyError):
            benchmark_query("missing")
