"""Golden end-to-end tests for the JOB-lite workload.

The expected aggregates below were produced by the front door at scale 1
with the default seed and independently cross-checked against the naive
reference evaluation (see ``tests/property/test_property_query_pipeline``
for the generic differential proof).  They pin the *whole* pipeline:
generator determinism, SQL parsing, decomposition search and Yannakakis
execution — any change to one layer that shifts an answer fails here.
"""

import io

import pytest

from repro.cli import main as cli_main
from repro.db.frontdoor import plan_query, run_query
from repro.workloads.joblite import (
    JOBLITE_QUERY_SQL,
    JOBLITE_QUERY_WIDTHS,
    build_joblite_database,
    joblite_query,
)
from repro.workloads.registry import (
    benchmark_queries,
    benchmark_query,
    joblite_benchmark_queries,
    workload_entries,
)

#: ``query -> (aggregate column, value, least width)`` at scale 1, seed 17.
GOLDEN = {
    "jl01": ("min_v1", 1950, 1),
    "jl02": ("count_v0", 1567, 1),
    "jl03": ("min_v1", 0, 1),
    "jl04": ("min_v1", 1950, 2),
    "jl05": ("count_v1", 205, 1),
    "jl06": ("max_v1", 2019, 1),
    "jl07": ("min_v0", 0, 1),
    "jl08": ("count_v0", 587, 2),
    "jl09": ("min_v1", 1950, 1),
    "jl10": ("count_v1", 863, 2),
}

EXPLAIN_JL01 = """\
query: jl01
atoms: 3  variables: 3
fingerprint: de0e2f0d9fd63db2
decomposition: width=1 provenance=solve
  node 0 (root): bag=[v0] cover=[movie_companies]
  node 1 (parent=0): bag=[v0, v1] cover=[title]
  node 2 (parent=0): bag=[v0, v2] cover=[movie_companies] enforce=[company_name]"""

EXPLAIN_JL08 = """\
query: jl08
atoms: 4  variables: 3
fingerprint: a239d5b771dbaf15
decomposition: width=2 provenance=solve
  node 0 (root): bag=[v1] cover=[movie_info] enforce=[title]
  node 1 (parent=0): bag=[v0, v1] cover=[movie_keyword]
  node 2 (parent=1): bag=[v0, v1, v2] cover=[keyword, movie_info]"""


@pytest.fixture(scope="module")
def database():
    return build_joblite_database(scale=1.0)


class TestRegistry:
    def test_joblite_is_a_workload_entry(self):
        entry = workload_entries()["joblite"]
        assert entry.default_seed == 17
        assert set(entry.schema) == {
            "title",
            "company_name",
            "movie_companies",
            "name",
            "cast_info",
            "keyword",
            "movie_keyword",
            "movie_info",
            "movie_link",
        }

    def test_table1_list_stays_pinned_to_six(self):
        names = [entry.name for entry in benchmark_queries()]
        assert names == ["q_ds", "q_hto", "q_hto2", "q_hto3", "q_hto4", "q_lb"]

    def test_joblite_queries_resolvable_by_name(self):
        entries = joblite_benchmark_queries()
        assert [entry.name for entry in entries] == sorted(JOBLITE_QUERY_SQL)
        entry = benchmark_query("jl04")
        assert entry.dataset == "joblite" and entry.width == 2
        with pytest.raises(KeyError):
            benchmark_query("jl99")

    def test_generator_is_deterministic(self):
        first = build_joblite_database(scale=0.1)
        second = build_joblite_database(scale=0.1)
        for table in first.relation_names():
            assert sorted(first.relation(table).rows) == sorted(
                second.relation(table).rows
            )


class TestGoldenAnswers:
    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_scale1_aggregates(self, database, name):
        column, value, width = GOLDEN[name]
        result = run_query(joblite_query(database, name), database, cache=None)
        assert result.outcome.complete
        assert result.columns == (column,)
        assert result.value == value
        assert result.width == width

    def test_widths_match_least_width_search(self, database):
        # The hard-coded width table is itself a claim; verify it against
        # the soft-width search for every query.
        for name, expected in sorted(JOBLITE_QUERY_WIDTHS.items()):
            plan = plan_query(joblite_query(database, name), database, cache=None)
            assert plan.width == expected, name

    def test_pinned_width_matches_search_answer(self, database):
        for name in ("jl01", "jl08"):
            _, value, width = GOLDEN[name]
            pinned = run_query(
                joblite_query(database, name), database, width=width, cache=None
            )
            assert pinned.value == value


class TestExplainStability:
    def test_explain_jl01(self, database):
        plan = plan_query(joblite_query(database, "jl01"), database, cache=None)
        assert plan.describe() == EXPLAIN_JL01

    def test_explain_jl08(self, database):
        plan = plan_query(joblite_query(database, "jl08"), database, cache=None)
        assert plan.describe() == EXPLAIN_JL08

    def test_cli_explain_matches_api(self):
        out = io.StringIO()
        code = cli_main(
            ["query", "--name", "jl08", "--explain", "--no-cache"], out=out
        )
        assert code == 0
        assert out.getvalue().rstrip("\n") == EXPLAIN_JL08


class TestCliQuery:
    def test_cli_runs_joblite_sql_end_to_end(self):
        out = io.StringIO()
        code = cli_main(
            ["query", "--sql", JOBLITE_QUERY_SQL["jl01"], "--no-cache"], out=out
        )
        assert code == 0
        text = out.getvalue()
        assert "min_v1 = 1950" in text
        assert "provenance=solve" in text

    def test_cli_named_query(self):
        out = io.StringIO()
        code = cli_main(["query", "--name", "jl05", "--no-cache"], out=out)
        assert code == 0
        assert "count_v1 = 205" in out.getvalue()

    def test_cli_cold_then_warm_is_byte_identical_with_cache_hit(self, tmp_path):
        cache_dir = str(tmp_path / "ctd")
        argv = ["query", "--name", "jl06", "--cache", cache_dir]
        cold_out, warm_out = io.StringIO(), io.StringIO()
        assert cli_main(argv, out=cold_out) == 0
        assert cli_main(argv, out=warm_out) == 0
        cold = cold_out.getvalue()
        warm = warm_out.getvalue()
        assert "max_v1 = 2019" in cold
        assert "provenance=solve" in cold
        assert "provenance=cache" in warm
        # Identical apart from where the decomposition came from.
        assert cold.replace("provenance=solve", "provenance=cache") == warm

    def test_cli_requires_exactly_one_source(self):
        out = io.StringIO()
        code = cli_main(["query", "--sql", "SELECT *", "--name", "jl01"], out=out)
        assert code == 2
        assert out.getvalue().startswith("error:")

    def test_cli_unknown_workload_is_user_error(self):
        out = io.StringIO()
        code = cli_main(
            ["query", "--sql", "SELECT MIN(a) FROM R", "--workload", "nope"],
            out=out,
        )
        assert code == 2
        assert "unknown workload" in out.getvalue()
