"""Cross-process determinism of the workload generators.

The snapshot cache is only sound if generation is a pure function of
``(workload, scale, seed)``: the same triple must produce byte-identical
code columns in any process, under any ``PYTHONHASHSEED`` (numpy's PCG64
stream is stable across platforms, and the columnar ingest path never
iterates a set or dict whose order could leak in).  This mirrors the
subprocess pattern of the PR 4 enumeration-order test.
"""

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.workloads.registry import workload_entries

#: (workload, scale, seed) triples covered by the determinism tests.
CASES = [("tpcds", 0.3, 5), ("hetionet", 0.3, 99), ("lsqb", 0.3, 123)]

_FINGERPRINT_SCRIPT = """
import hashlib

from repro.workloads.registry import workload_entry

entry = workload_entry({workload!r})
database = entry.build(scale={scale!r}, seed={seed!r})
digest = hashlib.sha256()
for name in database.relation_names():
    relation = database.relation(name)
    digest.update(name.encode())
    for attribute in relation.attributes:
        digest.update(attribute.encode())
        digest.update(relation.codes(attribute).tobytes())
for value in database.interner.values():
    digest.update(repr(value).encode())
print(digest.hexdigest())
"""


def _fingerprint_in_subprocess(workload, scale, seed, hash_seed):
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    script = textwrap.dedent(
        _FINGERPRINT_SCRIPT.format(workload=workload, scale=scale, seed=seed)
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return result.stdout.strip()


@pytest.mark.parametrize("workload,scale,seed", CASES)
def test_byte_identical_across_processes(workload, scale, seed):
    digests = {
        _fingerprint_in_subprocess(workload, scale, seed, hash_seed)
        for hash_seed in ("0", "1", "4242")
    }
    assert len(digests) == 1
    assert next(iter(digests))


class TestInProcessDeterminism:
    @pytest.mark.parametrize("workload,scale,seed", CASES)
    def test_same_seed_same_code_columns(self, workload, scale, seed):
        entry = workload_entries()[workload]
        a = entry.build(scale=scale, seed=seed)
        b = entry.build(scale=scale, seed=seed)
        for name in a.relation_names():
            for attribute in a.relation(name).attributes:
                assert np.array_equal(
                    a.relation(name).codes(attribute),
                    b.relation(name).codes(attribute),
                ), (name, attribute)
        assert a.interner.values() == b.interner.values()

    @pytest.mark.parametrize("workload", sorted(w for w, _, _ in CASES))
    def test_different_seeds_differ(self, workload):
        entry = workload_entries()[workload]
        a = entry.build(scale=0.3, seed=1)
        b = entry.build(scale=0.3, seed=2)
        assert any(
            not np.array_equal(
                a.relation(name).codes(attribute),
                b.relation(name).codes(attribute),
            )
            for name in a.relation_names()
            for attribute in a.relation(name).attributes
            if len(a.relation(name)) == len(b.relation(name))
        ) or a.total_rows() != b.total_rows()
