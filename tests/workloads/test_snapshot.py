"""Tests for the workload snapshot cache and the registry loader API."""

import os

import numpy as np
import pytest

from repro.db.database import Database
from repro.workloads.ingest import ChunkedTableBuilder, load_table_files
from repro.workloads.registry import (
    AUTO_SNAPSHOT_MIN_SCALE,
    workload_entries,
    workload_entry,
)
from repro.workloads.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotCache,
    StaleSnapshotError,
    load_snapshot,
    read_snapshot_meta,
    save_snapshot,
    schema_fingerprint,
)


def _databases_equal(a: Database, b: Database) -> bool:
    if a.relation_names() != b.relation_names():
        return False
    for name in a.relation_names():
        left, right = a.relation(name), b.relation(name)
        if left.attributes != right.attributes or len(left) != len(right):
            return False
        for attribute in left.attributes:
            if not np.array_equal(left.codes(attribute), right.codes(attribute)):
                return False
        if a.primary_key(name) != b.primary_key(name):
            return False
    return a.interner.values() == b.interner.values()


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("workload", ["tpcds", "hetionet", "lsqb"])
    def test_round_trip_equals_cold_generation(self, tmp_path, workload):
        entry = workload_entry(workload)
        cold = entry.build(scale=0.3)
        path = str(tmp_path / "snap.npz")
        save_snapshot(path, cold, workload, 0.3, entry.default_seed, entry.schema_hash)
        loaded = load_snapshot(path)
        assert _databases_equal(cold, loaded)
        # Decoded rows (not just codes) agree too.
        for name in cold.relation_names():
            assert cold.relation(name).rows == loaded.relation(name).rows

    def test_string_values_round_trip(self, tmp_path):
        database = Database()
        database.create_table_columns(
            "people",
            ["name", "city"],
            [["ada", "bob", "ada"], ["x", "y", "x"]],
            primary_key=None,
        )
        path = str(tmp_path / "snap.npz")
        save_snapshot(path, database, "custom", 1.0, 0, "hash")
        loaded = load_snapshot(path)
        assert loaded.relation("people").rows == database.relation("people").rows

    def test_loaded_database_answers_queries(self, tmp_path):
        from repro.workloads.registry import benchmark_query

        entry = benchmark_query("q_hto3")
        cache = SnapshotCache(str(tmp_path))
        database, hit = entry.workload.load_with_status(scale=0.3, cache=cache)
        assert not hit
        loaded, hit = entry.workload.load_with_status(scale=0.3, cache=cache)
        assert hit
        query = entry.build_query(loaded)
        assert query.name == "q_hto3"


class TestSnapshotCache:
    def test_miss_then_hit(self, tmp_path):
        entry = workload_entry("tpcds")
        cache = SnapshotCache(str(tmp_path))
        _, hit_first = entry.load_with_status(scale=0.2, cache=cache)
        _, hit_second = entry.load_with_status(scale=0.2, cache=cache)
        assert (hit_first, hit_second) == (False, True)

    def test_key_separates_scale_seed_and_schema(self, tmp_path):
        entry = workload_entry("tpcds")
        cache = SnapshotCache(str(tmp_path))
        entry.load(scale=0.2, cache=cache)
        entry.load(scale=0.4, cache=cache)
        entry.load(scale=0.2, seed=99, cache=cache)
        assert len(cache.entries()) == 3

    def test_stale_version_raises_and_rebuilds(self, tmp_path, corrupt_snapshot_version):
        entry = workload_entry("lsqb")
        cache = SnapshotCache(str(tmp_path))
        entry.load(scale=0.2, cache=cache)
        path = cache.entries()[0].path
        corrupt_snapshot_version(path)
        with pytest.raises(StaleSnapshotError):
            load_snapshot(path)
        assert cache.entries()[0].stale
        # load_or_build treats stale as a miss and overwrites the file.
        _, hit = entry.load_with_status(scale=0.2, cache=cache)
        assert not hit
        assert not cache.entries()[0].stale

    def test_clean_removes_everything(self, tmp_path):
        entry = workload_entry("hetionet")
        cache = SnapshotCache(str(tmp_path))
        entry.load(scale=0.2, cache=cache)
        report = cache.clean()
        assert (report.total, report.snapshots) == (1, 1)
        assert cache.entries() == []

    def test_auto_mode_skips_small_scales(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE", str(tmp_path))
        entry = workload_entry("tpcds")
        entry.load(scale=0.2)  # below AUTO_SNAPSHOT_MIN_SCALE: no snapshot
        assert SnapshotCache().entries() == []
        assert AUTO_SNAPSHOT_MIN_SCALE > 1.0

    def test_auto_mode_caches_large_scales(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE", str(tmp_path))
        entry = workload_entry("tpcds")
        entry.load(scale=AUTO_SNAPSHOT_MIN_SCALE)
        assert len(SnapshotCache().entries()) == 1

    def test_auto_mode_disable_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_WORKLOAD_SNAPSHOTS_OFF", "1")
        workload_entry("tpcds").load(scale=AUTO_SNAPSHOT_MIN_SCALE)
        assert SnapshotCache().entries() == []


class TestSchemaFingerprint:
    def test_sensitive_to_schema_and_version(self):
        schema = {"t": (("a", "b"), "a")}
        base = schema_fingerprint(schema, 1)
        assert schema_fingerprint(schema, 2) != base
        assert schema_fingerprint({"t": (("a", "c"), "a")}, 1) != base
        assert schema_fingerprint(schema, 1) == base

    def test_entries_have_distinct_hashes(self):
        entries = workload_entries()
        hashes = {entry.schema_hash for entry in entries.values()}
        assert len(hashes) == len(entries)


class TestDumpLoading:
    def test_load_dump_csv_with_header(self, tmp_path):
        (tmp_path / "City.csv").write_text(
            "CityId,isPartOf_CountryId\n0,0\n1,0\n2,1\n"
        )
        (tmp_path / "Person.csv").write_text(
            "PersonId,isLocatedIn_CityId\n0,0\n1,2\n"
        )
        (tmp_path / "Person_knows_Person.csv").write_text(
            "Person1Id,Person2Id\n0,1\n"
        )
        database = workload_entry("lsqb").load_dump(str(tmp_path))
        assert database.relation("City").rows == [(0, 0), (1, 0), (2, 1)]
        assert database.primary_key("City") == "CityId"
        assert database.primary_key("Person") == "PersonId"

    def test_load_dump_string_columns(self, tmp_path):
        # Non-integer dump columns stay strings and survive the columnar
        # ingest (object arrays take the per-value interning path).
        (tmp_path / "t.csv").write_text("name,score\nada,1\nbob,2\nada,3\n")
        database = load_table_files(
            Database(), str(tmp_path), {"t": (("name", "score"), None)}
        )
        assert database.relation("t").rows == [("ada", 1), ("bob", 2), ("ada", 3)]

    def test_column_type_is_decided_over_the_whole_column(self, tmp_path):
        # A non-numeric value appearing only after a chunk boundary must
        # turn the *whole* column into strings — per-chunk inference would
        # make rows from different chunks silently unjoinable.
        lines = [f"{i},{i}" for i in range(5)] + ["N/A,5"]
        (tmp_path / "t.csv").write_text("a,b\n" + "\n".join(lines) + "\n")
        database = load_table_files(
            Database(), str(tmp_path), {"t": (("a", "b"), None)}, chunk_rows=2
        )
        rows = database.relation("t").rows
        assert rows[0] == ("0", 0)
        assert rows[-1] == ("N/A", 5)
        assert {type(a) for a, _ in rows} == {str}

    def test_ids_past_int64_fall_back_to_strings(self, tmp_path):
        huge = 2**64
        (tmp_path / "t.csv").write_text(f"a,b\n{huge},1\n2,2\n")
        database = load_table_files(
            Database(), str(tmp_path), {"t": (("a", "b"), None)}
        )
        assert database.relation("t").rows == [(str(huge), 1), ("2", 2)]

    def test_load_dump_tsv_without_header(self, tmp_path):
        for table in workload_entry("hetionet").schema:
            (tmp_path / f"{table}.tsv").write_text("0\t1\n1\t2\n")
        database = workload_entry("hetionet").load_dump(str(tmp_path))
        assert database.relation("hetio45159").rows == [(0, 1), (1, 2)]

    def test_missing_file_reports_table(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="City"):
            workload_entry("lsqb").load_dump(str(tmp_path))

    def test_dump_database_runs_benchmark_query(self, tmp_path):
        from repro.workloads.hetionet import hetionet_query

        for table in workload_entry("hetionet").schema:
            (tmp_path / f"{table}.csv").write_text(
                "s,d\n" + "".join(f"{i},{i + 1}\n" for i in range(6))
            )
        database = workload_entry("hetionet").load_dump(str(tmp_path))
        query = hetionet_query(database, "q_hto3")
        assert len(query.atoms) == 4


class TestChunkedTableBuilder:
    def test_chunks_concatenate(self):
        database = Database()
        builder = ChunkedTableBuilder("t", ["a", "b"])
        builder.append([np.array([1, 2]), np.array([3, 4])])
        builder.append([np.array([5]), np.array([6])])
        builder.ingest(database)
        assert database.relation("t").rows == [(1, 3), (2, 4), (5, 6)]

    def test_ragged_chunk_rejected(self):
        builder = ChunkedTableBuilder("t", ["a", "b"])
        with pytest.raises(ValueError, match="ragged"):
            builder.append([np.array([1, 2]), np.array([3])])

    def test_wrong_arity_rejected(self):
        builder = ChunkedTableBuilder("t", ["a", "b"])
        with pytest.raises(ValueError, match="columns"):
            builder.append([np.array([1])])


class TestCorruptFiles:
    """A damaged cache directory stays listable, cleanable and loadable."""

    def _cache_with_junk(self, tmp_path):
        entry = workload_entry("tpcds")
        cache = SnapshotCache(str(tmp_path))
        entry.load(scale=0.2, cache=cache)
        junk = tmp_path / "junk.npz"
        junk.write_bytes(b"this is not a zip archive")
        return entry, cache, str(junk)

    def test_entries_report_unreadable_files_as_stale(self, tmp_path):
        _, cache, junk = self._cache_with_junk(tmp_path)
        infos = {info.path: info for info in cache.entries()}
        assert len(infos) == 2
        assert infos[junk].stale and infos[junk].workload == "?"

    def test_clean_removes_unreadable_files(self, tmp_path):
        _, cache, _ = self._cache_with_junk(tmp_path)
        assert cache.clean().total == 2
        assert cache.entries() == []

    def test_corrupt_named_snapshot_is_rebuilt(self, tmp_path):
        entry = workload_entry("tpcds")
        cache = SnapshotCache(str(tmp_path))
        entry.load(scale=0.2, cache=cache)
        path = entry.snapshot_path(cache, 0.2)
        with open(path, "wb") as handle:
            handle.write(b"truncated")
        with pytest.raises(StaleSnapshotError):
            load_snapshot(path)
        database, hit = entry.load_with_status(scale=0.2, cache=cache)
        assert not hit
        assert database.total_rows() > 0
        _, hit = entry.load_with_status(scale=0.2, cache=cache)
        assert hit

    def test_read_meta_raises_stale_error(self, tmp_path):
        junk = tmp_path / "junk.npz"
        junk.write_bytes(b"nope")
        with pytest.raises(StaleSnapshotError, match="unreadable"):
            read_snapshot_meta(str(junk))


class TestMetadata:
    def test_read_snapshot_meta(self, tmp_path):
        entry = workload_entry("tpcds")
        cache = SnapshotCache(str(tmp_path))
        entry.load(scale=0.2, cache=cache)
        info = cache.entries()[0]
        meta = read_snapshot_meta(info.path)
        assert meta["workload"] == "tpcds"
        assert meta["version"] == SNAPSHOT_VERSION
        assert meta["schema_hash"] == entry.schema_hash
        assert info.total_rows == meta["total_rows"] > 0
        assert os.path.getsize(info.path) == info.size_bytes
