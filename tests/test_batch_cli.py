"""End-to-end tests for the ``repro batch`` CLI verb.

These run the real pipeline — supervised workers, certification,
checkpoint ledger — on one small benchmark query, and pin down the error
contract: every anticipated failure is a one-line ``error:`` message with
the documented exit code, never a traceback.
"""

import io
import json
import os

import pytest

from repro.cli import default_ledger_path, main

QUERY = "q_hto"
SCALE = "0.3"


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def batch_args(ledger, *extra):
    return (
        "batch",
        "--queries",
        QUERY,
        "--scale",
        SCALE,
        "--ledger",
        ledger,
        *extra,
    )


@pytest.fixture()
def ledger_path(tmp_path):
    return str(tmp_path / "ledger.jsonl")


class TestBatchRuns:
    def test_batch_completes_and_reports(self, ledger_path):
        code, out = run_cli(*batch_args(ledger_path))
        assert code == 0, out
        assert "1 ok" in out
        assert f"ledger: {ledger_path}" in out
        assert os.path.exists(ledger_path)

    def test_rerun_resumes_from_the_ledger(self, ledger_path):
        code, _ = run_cli(*batch_args(ledger_path))
        assert code == 0
        code, out = run_cli(*batch_args(ledger_path))
        assert code == 0
        assert "resumed from ledger" in out

    def test_fresh_discards_the_checkpoint(self, ledger_path):
        code, _ = run_cli(*batch_args(ledger_path))
        assert code == 0
        code, out = run_cli(*batch_args(ledger_path, "--fresh"))
        assert code == 0
        assert "resumed from ledger" not in out

    def test_no_ledger_runs_without_checkpointing(self, tmp_path):
        code, out = run_cli(
            "batch", "--queries", QUERY, "--scale", SCALE, "--no-ledger"
        )
        assert code == 0
        assert "ledger:" not in out

    def test_ledger_records_a_certified_task(self, ledger_path):
        run_cli(*batch_args(ledger_path))
        with open(ledger_path, "r", encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        tasks = [r for r in records if r["type"] == "task"]
        assert len(tasks) == 1
        assert tasks[0]["status"] == "ok"
        assert tasks[0]["result"]["query"] == QUERY

    def test_default_ledger_path_is_deterministic(self):
        tasks = [{"kind": "solve", "query": QUERY, "scale": 0.3}]
        path = default_ledger_path(tasks)
        assert path == default_ledger_path(list(tasks))
        assert path.startswith(os.path.join("workloads", ".batches"))

    def test_exhausted_budget_is_a_failed_batch(self, ledger_path):
        # A work budget far below any real solve exhausts the whole ladder.
        code, out = run_cli(
            *batch_args(ledger_path, "--max-work", "10", "--retries", "1")
        )
        assert code == 1
        assert "1 failed" in out
        assert "timeout" in out


class TestBatchErrors:
    def test_unknown_query_is_a_one_line_user_error(self, ledger_path):
        code, out = run_cli("batch", "--queries", "nope", "--ledger", ledger_path)
        assert code == 2
        assert out.startswith("error:")
        assert "unknown benchmark query" in out
        assert "Traceback" not in out

    def test_corrupt_ledger_is_a_one_line_ledger_error(self, ledger_path):
        code, _ = run_cli(*batch_args(ledger_path))
        assert code == 0
        with open(ledger_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        lines.insert(1, "NOT JSON\n")
        with open(ledger_path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        code, out = run_cli(*batch_args(ledger_path))
        assert code == 2
        assert out.startswith("error:")
        assert "corrupt" in out
        assert "Traceback" not in out

    def test_missing_hypergraph_file_is_exit_2(self, tmp_path):
        code, out = run_cli("decompose", str(tmp_path / "missing.json"), "-k", "2")
        assert code == 2
        assert out.startswith("error:")
