"""Unit tests for GYO reduction, α-acyclicity and join trees."""

from repro.baselines.acyclic import gyo_reduction, is_alpha_acyclic, join_tree
from repro.decompositions.width import is_complete_join_tree
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.generators import random_acyclic_hypergraph


class TestGYO:
    def test_acyclic_reduces_to_nothing(self):
        hypergraph = Hypergraph({"R": ["a", "b"], "S": ["b", "c"], "T": ["c", "d"]})
        assert gyo_reduction(hypergraph) == []
        assert is_alpha_acyclic(hypergraph)

    def test_triangle_is_cyclic(self, triangle):
        assert not is_alpha_acyclic(triangle)
        assert gyo_reduction(triangle)

    def test_alpha_acyclic_with_big_edge(self):
        # α-acyclicity is not hereditary: adding a covering edge makes the
        # triangle acyclic.
        hypergraph = Hypergraph(
            {"R": ["x", "y"], "S": ["y", "z"], "T": ["z", "x"], "big": ["x", "y", "z"]}
        )
        assert is_alpha_acyclic(hypergraph)

    def test_cycles_are_cyclic(self, four_cycle, c5):
        assert not is_alpha_acyclic(four_cycle)
        assert not is_alpha_acyclic(c5)

    def test_random_acyclic_generator_agrees(self):
        for seed in range(4):
            assert is_alpha_acyclic(random_acyclic_hypergraph(7, seed=seed))


class TestJoinTree:
    def test_join_tree_of_path(self):
        hypergraph = Hypergraph({"R": ["a", "b"], "S": ["b", "c"], "T": ["c", "d"]})
        tree = join_tree(hypergraph)
        assert tree is not None
        assert tree.is_valid()
        assert is_complete_join_tree(tree)

    def test_join_tree_none_for_cyclic(self, triangle):
        assert join_tree(triangle) is None

    def test_join_tree_connectedness_for_star_schema(self):
        hypergraph = Hypergraph(
            {
                "fact": ["k1", "k2", "k3"],
                "dim1": ["k1", "a"],
                "dim2": ["k2", "b"],
                "dim3": ["k3", "c"],
            }
        )
        tree = join_tree(hypergraph)
        assert tree is not None and tree.is_valid()
