"""Unit tests for the baseline width algorithms (hw, ghw, tw, fractional covers)."""

import pytest

from repro.baselines.detkdecomp import hd_of_width, hw_leq, hypertree_width
from repro.baselines.fhw import fhw_upper_bound, fractional_cover_number
from repro.baselines.ghw import generalized_hypertree_width, ghw_leq
from repro.baselines.treewidth import treewidth_exact, treewidth_min_fill
from repro.core.soft import shw_leq, soft_hypertree_width
from repro.decompositions.width import verify_hd
from repro.hypergraph.generators import random_acyclic_hypergraph
from repro.hypergraph.library import cycle_hypergraph, grid_hypergraph


class TestHypertreeWidth:
    def test_acyclic_has_hw_1(self):
        hypergraph = random_acyclic_hypergraph(6, seed=0)
        assert hw_leq(hypergraph, 1)
        assert hypertree_width(hypergraph) == 1

    def test_triangle_hw_2(self, triangle):
        assert not hw_leq(triangle, 1)
        assert hypertree_width(triangle) == 2

    def test_cycles_have_hw_2(self):
        for length in (4, 5, 6, 8):
            assert hypertree_width(cycle_hypergraph(length)) == 2

    def test_h2_hw_3(self, h2):
        # Example 1: hw(H2) = 3.
        assert not hw_leq(h2, 2)
        hd = hd_of_width(h2, 3)
        assert hd is not None
        assert verify_hd(hd, expected_width=3)

    def test_returned_hd_is_valid(self, four_cycle):
        hd = hd_of_width(four_cycle, 2)
        assert hd is not None
        assert hd.is_valid()
        assert hd.satisfies_special_condition()

    def test_k_zero_rejected(self, triangle):
        assert hd_of_width(triangle, 0) is None

    def test_max_k_exhausted(self, triangle):
        with pytest.raises(ValueError):
            hypertree_width(triangle, max_k=1)


class TestGeneralizedHypertreeWidth:
    def test_acyclic_ghw_1(self):
        hypergraph = random_acyclic_hypergraph(5, seed=1)
        assert ghw_leq(hypergraph, 1) is not None

    def test_triangle_ghw_2(self, triangle):
        assert ghw_leq(triangle, 1) is None
        assert ghw_leq(triangle, 2) is not None
        assert generalized_hypertree_width(triangle)[0] == 2

    def test_h2_ghw_2(self, h2):
        # Example 1: ghw(H2) = 2 < hw(H2) = 3.
        width, decomposition = generalized_hypertree_width(h2)
        assert width == 2
        assert decomposition.is_valid()

    def test_hierarchy_ghw_leq_shw_leq_hw(self, h2, four_cycle, c5):
        for hypergraph in (h2, four_cycle, c5):
            ghw = generalized_hypertree_width(hypergraph)[0]
            shw = soft_hypertree_width(hypergraph)[0]
            hw = hypertree_width(hypergraph)
            assert ghw <= shw <= hw


class TestTreewidth:
    def test_path_treewidth_1(self):
        from repro.hypergraph.hypergraph import Hypergraph

        hypergraph = Hypergraph({"a": ["1", "2"], "b": ["2", "3"], "c": ["3", "4"]})
        assert treewidth_exact(hypergraph) == 1
        assert treewidth_min_fill(hypergraph) == 1

    def test_cycle_treewidth_2(self):
        hypergraph = cycle_hypergraph(6)
        assert treewidth_exact(hypergraph) == 2
        assert treewidth_min_fill(hypergraph) >= 2

    def test_grid_treewidth(self):
        grid = grid_hypergraph(3, 3)
        assert treewidth_exact(grid) == 3

    def test_min_fill_upper_bounds_exact(self, h2):
        assert treewidth_min_fill(h2) >= treewidth_exact(h2)

    def test_exact_rejects_large_inputs(self):
        grid = grid_hypergraph(5, 5)
        with pytest.raises(ValueError):
            treewidth_exact(grid, max_vertices=10)


class TestFractionalCovers:
    def test_single_edge_cover_number_1(self, triangle):
        assert fractional_cover_number(triangle, {"x", "y"}) == pytest.approx(1.0)

    def test_triangle_fractional_cover_is_3_halves(self, triangle):
        value = fractional_cover_number(triangle, {"x", "y", "z"})
        assert value == pytest.approx(1.5, abs=1e-6)

    def test_empty_bag_costs_nothing(self, triangle):
        assert fractional_cover_number(triangle, set()) == 0.0

    def test_uncovered_vertex_rejected(self):
        from repro.hypergraph.hypergraph import Hypergraph

        hypergraph = Hypergraph({"R": ["x", "y"]}, vertices=["w"])
        with pytest.raises(ValueError):
            fractional_cover_number(hypergraph, {"w"})

    def test_fhw_upper_bound_respects_hierarchy(self, h2):
        # fhw ≤ ghw ≤ shw: the fractional width of a width-2 soft
        # decomposition is at most 2.
        decomposition = shw_leq(h2, 2)
        assert fhw_upper_bound(decomposition) <= 2.0 + 1e-9
