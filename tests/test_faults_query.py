"""Fault-path tests for the ``repro query`` front door.

Three failure families, each of which must degrade loudly and honestly:

* **budget exhaustion** mid-pipeline → no rows, honest work counters and
  the distinct exit code 125;
* a **poisoned cache entry** for the query's own shape → quarantined or
  rejected at re-certification, then transparently re-solved so the
  answer never changes;
* **malformed SQL** → a one-line ``error:`` diagnostic and exit code 2,
  never a traceback.
"""

import io
import json

import pytest

from repro.cli import main as cli_main
from repro.core.cache import DecompositionCache
from repro.db.frontdoor import run_query
from repro.runtime.budget import Budget
from repro.workloads.joblite import build_joblite_database, joblite_query


def run_cli(arguments):
    out = io.StringIO()
    code = cli_main(arguments, out=out)
    return code, out.getvalue()


@pytest.fixture(scope="module")
def database():
    return build_joblite_database(scale=1.0)


class TestBudgetExhaustion:
    def test_cli_exits_125_with_no_result(self):
        code, output = run_cli(["query", "--name", "jl02", "--max-work", "200"])
        assert code == 125
        assert "result: none (run stopped early)" in output
        assert "outcome: budget_exhausted" in output
        # No rows or aggregate line may sneak out of a cut run.
        assert "count_v0 =" not in output

    def test_api_returns_no_rows_with_honest_counters(self, database):
        budget = Budget(max_work=200)
        result = run_query(
            joblite_query(database, "jl02"), database, cache=None, budget=budget
        )
        assert result.outcome.partial
        assert result.outcome.status == "budget_exhausted"
        assert result.rows is None and result.value is None
        # Work is charged in batches, so the counter may overshoot the
        # cap by one charge — but it must at least have reached it.
        assert result.outcome.work >= 200

    def test_generous_budget_still_completes(self):
        code, output = run_cli(
            ["query", "--name", "jl02", "--max-work", "100000000", "--no-cache"]
        )
        assert code == 0
        assert "count_v0 = 1567" in output


class TestPoisonedCache:
    def poison(self, store, mutate):
        """Rewrite every cache entry through ``mutate(record)``."""
        entries = store.entries()
        assert entries, "expected the cold run to have populated the cache"
        for info in entries:
            with open(info.path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
            mutate(record)
            with open(info.path, "w", encoding="utf-8") as handle:
                json.dump(record, handle)

    def test_bad_bags_are_rejected_and_resolved(self, database, tmp_path):
        store = DecompositionCache(str(tmp_path))
        query = joblite_query(database, "jl01")
        cold = run_query(query, database, cache=store)
        assert cold.provenance == "solve"

        def break_bags(record):
            if record.get("decompositions"):
                record["decompositions"] = [{"bags": [[0]], "parents": [None]}]

        self.poison(store, break_bags)
        healed = run_query(query, database, cache=store)
        # The poisoned CTD failed re-certification; the front door must
        # re-solve rather than execute against it — same answer as cold.
        assert store.stats.rejected >= 1
        assert healed.provenance == "solve"
        assert healed.value == cold.value and healed.rows == cold.rows
        # The healed entry serves correctly on the next run.
        warm = run_query(query, database, cache=store)
        assert warm.provenance == "cache"
        assert warm.value == cold.value

    def test_unparseable_entry_is_quarantined(self, database, tmp_path):
        store = DecompositionCache(str(tmp_path))
        query = joblite_query(database, "jl01")
        cold = run_query(query, database, cache=store)
        for info in store.entries():
            with open(info.path, "w", encoding="utf-8") as handle:
                handle.write("{ not json")
        healed = run_query(query, database, cache=store)
        assert store.stats.quarantined >= 1
        assert any(path.endswith(".corrupt") for path in store.quarantined())
        assert healed.value == cold.value


class TestMalformedSql:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELEKT a FROM R",
            "SELECT MIN(t_id) FROM no_such_table",
            "SELECT MIN(t_id) FROM title WHERE t_id = 5",
            "SELECT MIN(t_id) FROM title LEFT JOIN name ON t_id = n_id",
        ],
    )
    def test_cli_prints_one_error_line_and_exits_2(self, sql):
        code, output = run_cli(["query", "--sql", sql, "--no-cache"])
        assert code == 2
        lines = [line for line in output.splitlines() if line]
        assert len(lines) == 1
        assert lines[0].startswith("error:")
        assert "Traceback" not in output

    def test_missing_file_is_a_user_error(self, tmp_path):
        code, output = run_cli(
            ["query", "--file", str(tmp_path / "absent.sql"), "--no-cache"]
        )
        assert code == 2
        assert output.startswith("error:")
