"""Property tests for independent decomposition certification.

The checker must accept every decomposition the solver stack emits
(``ctd.py``, ``constrained.py``, the ranked enumerator) and reject every
single-field mutation of one — a dropped bag vertex, a swapped child, a
violated constraint, an understated width claim.  It must never raise on
malformed input: malformation is a verdict, not a crash.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.candidate_bags import soft_candidate_bags
from repro.core.certify import (
    Certification,
    certify_ctd,
    decomposition_from_payload,
    decomposition_to_payload,
)
from repro.core.constrained import constrained_candidate_td
from repro.core.constraints import ConnectedCoverConstraint
from repro.core.ctd import candidate_td
from repro.core.enumerate import enumerate_ctds
from repro.core.preferences import NodeCountPreference
from repro.decompositions.td import TreeDecomposition
from repro.hypergraph.library import hypergraph_h2, triangle_hypergraph

from tests.property.test_property_invariants import small_hypergraphs

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def solver_outputs(hypergraph, k=2):
    """Every decomposition the three solver routes produce for ``hypergraph``."""
    bags = soft_candidate_bags(hypergraph, k)
    outputs = []
    plain = candidate_td(hypergraph, bags)
    if plain is not None:
        outputs.append((plain, None))
    constraint = ConnectedCoverConstraint(hypergraph, k)
    constrained = constrained_candidate_td(
        hypergraph,
        constraint.filter_bags(bags),
        constraint=constraint,
        preference=NodeCountPreference(),
    )
    if constrained is not None:
        outputs.append((constrained, constraint))
    for enumerated in enumerate_ctds(hypergraph, bags, limit=4):
        outputs.append((enumerated, None))
    return outputs


class TestAcceptsSolverOutputs:
    @SETTINGS
    @given(small_hypergraphs(max_vertices=6, max_edges=6))
    def test_every_solver_output_is_certified(self, hypergraph):
        for ctd, constraint in solver_outputs(hypergraph):
            certification = certify_ctd(
                hypergraph, ctd, constraint=constraint, width_claim=2
            )
            assert certification.ok, certification.describe()
            assert bool(certification)

    @SETTINGS
    @given(small_hypergraphs(max_vertices=6, max_edges=6))
    def test_wire_round_trip_preserves_certification(self, hypergraph):
        for ctd, constraint in solver_outputs(hypergraph):
            payload = decomposition_to_payload(ctd)
            rebuilt = decomposition_from_payload(hypergraph, payload)
            assert certify_ctd(
                hypergraph, rebuilt, constraint=constraint, width_claim=2
            ).ok
            # Serialisation is deterministic: same tree, same payload.
            assert decomposition_to_payload(rebuilt) == payload


def reference_decomposition(hypergraph=None):
    hypergraph = hypergraph or hypergraph_h2()
    bags = soft_candidate_bags(hypergraph, 2)
    ctd = candidate_td(hypergraph, bags)
    assert ctd is not None
    return hypergraph, ctd


def mutate(hypergraph, ctd, mutator):
    """Apply ``mutator`` to the wire payload and rebuild the decomposition."""
    payload = decomposition_to_payload(ctd)
    bags = [list(bag) for bag in payload["bags"]]
    parents = list(payload["parents"])
    mutator(bags, parents)
    return TreeDecomposition.from_bags(hypergraph, bags, parents)


class TestRejectsMutations:
    def test_dropped_bag_vertex_is_rejected(self):
        hypergraph, ctd = reference_decomposition()
        largest = max(
            range(len(ctd.bags())), key=lambda i: len(ctd.bags()[i])
        )

        def drop(bags, parents):
            bags[largest] = bags[largest][:-1]

        mutated = mutate(hypergraph, ctd, drop)
        certification = certify_ctd(hypergraph, mutated)
        assert not certification.ok
        assert certification.violations

    def test_disconnected_vertex_subtree_is_rejected(self):
        # The path [x,y]-[y,z]-[z,x] covers every triangle edge, but the
        # holders of x (the two endpoints) do not form a connected subtree.
        hypergraph = triangle_hypergraph()
        ctd = TreeDecomposition.from_bags(
            hypergraph, [["x", "y"], ["y", "z"], ["z", "x"]], [None, 0, 1]
        )
        certification = certify_ctd(hypergraph, ctd)
        assert not certification.ok
        assert any("disconnected" in v for v in certification.violations)

    def test_reparenting_breaks_connectedness(self):
        hypergraph, ctd = reference_decomposition()
        payload = decomposition_to_payload(ctd)
        if len(payload["bags"]) < 3:
            pytest.skip("reference decomposition too small to reparent")

        def reparent(bags, parents):
            parents[-1] = 0 if parents[-1] != 0 else 1

        mutated = mutate(hypergraph, ctd, reparent)
        original = certify_ctd(hypergraph, mutated)
        # Either the reparenting broke connectedness (the expected case) or
        # the tree happened to stay valid — assert the checker agrees with
        # the ground-truth validator either way.
        assert original.ok == mutated.is_valid()

    def test_violated_constraint_is_rejected(self):
        # A single all-vertices bag is a valid TD of the triangle but has
        # no connected cover of size <= 1, so ConCov(k=1) must fail while
        # the structural checks pass.
        hypergraph = triangle_hypergraph()
        ctd = TreeDecomposition.single_bag(hypergraph)
        assert certify_ctd(hypergraph, ctd).ok
        constraint = ConnectedCoverConstraint(hypergraph, 1)
        certification = certify_ctd(hypergraph, ctd, constraint=constraint)
        assert not certification.ok
        assert any("constraint" in v for v in certification.violations)

    def test_understated_width_claim_is_rejected(self):
        hypergraph = triangle_hypergraph()
        ctd = TreeDecomposition.single_bag(hypergraph)
        assert certify_ctd(hypergraph, ctd, width_claim=2).ok
        certification = certify_ctd(hypergraph, ctd, width_claim=1)
        assert not certification.ok
        assert any("edge cover" in v for v in certification.violations)

    def test_unknown_vertex_is_rejected_not_crashed(self):
        hypergraph = triangle_hypergraph()
        ctd = TreeDecomposition.from_bags(
            hypergraph, [["x", "y", "z", "ghost"]], [None]
        )
        certification = certify_ctd(hypergraph, ctd)
        assert not certification.ok
        assert any("unknown vertex" in v for v in certification.violations)

    def test_missing_vertex_is_rejected(self):
        hypergraph = triangle_hypergraph()
        ctd = TreeDecomposition.from_bags(hypergraph, [["x", "y"]], [None])
        certification = certify_ctd(hypergraph, ctd)
        assert not certification.ok

    def test_all_violations_are_reported_not_just_the_first(self):
        hypergraph = triangle_hypergraph()
        ctd = TreeDecomposition.from_bags(hypergraph, [["x"]], [None])
        certification = certify_ctd(hypergraph, ctd, width_claim=0)
        # Edge cover, missing vertices and the width claim all fail; the
        # quarantine record should name them all.
        assert len(certification.violations) >= 3
        assert "; " in certification.describe()


class TestWireFormat:
    def test_round_trip(self):
        hypergraph, ctd = reference_decomposition()
        payload = decomposition_to_payload(ctd)
        rebuilt = decomposition_from_payload(hypergraph, payload)
        assert rebuilt.bags() == ctd.bags()

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            [],
            "bags",
            {},
            {"bags": [["x"]], "parents": []},
            {"bags": [], "parents": []},
            {"bags": [["x"]], "parents": [0]},  # root with a parent
            {"bags": [["x"], ["y"]], "parents": [None, 5]},  # out of range
            {"bags": [["x"], ["y"]], "parents": [None, -1]},
            {"bags": [["x"], ["y"]], "parents": [None, None]},  # two roots
            {"bags": [["x"], ["y"]], "parents": [None, 1]},  # forward pointer
            {"bags": [["x"], 3], "parents": [None, 0]},
            {"bags": [["x"], ["y"]], "parents": [None, "0"]},
        ],
    )
    def test_malformed_payloads_raise_value_error(self, payload):
        hypergraph = triangle_hypergraph()
        with pytest.raises(ValueError):
            decomposition_from_payload(hypergraph, payload)

    def test_certification_dataclass(self):
        ok = Certification(True)
        assert bool(ok) and ok.describe() == "certified"
        bad = Certification(False, ("a", "b"))
        assert not bad and bad.describe() == "a; b"
