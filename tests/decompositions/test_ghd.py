"""Unit tests for GHDs, HDs and the special condition."""

import pytest

from repro.decompositions.ghd import (
    GeneralizedHypertreeDecomposition,
    HypertreeDecomposition,
)
from repro.decompositions.td import TreeDecomposition
from repro.decompositions.width import verify_ghd, verify_hd, verify_td
from repro.hypergraph.library import hypergraph_h2


class TestGHDConstruction:
    def test_triangle_ghd_width_two(self, triangle):
        ghd = GeneralizedHypertreeDecomposition.from_labels(
            triangle,
            bags=[{"x", "y", "z"}],
            covers=[["R", "S"]],
            parent_of=[None],
        )
        assert ghd.ghd_width() == 2
        assert ghd.is_valid()
        assert verify_ghd(ghd, expected_width=2)

    def test_cover_must_cover_bag(self, triangle):
        ghd = GeneralizedHypertreeDecomposition.from_labels(
            triangle,
            bags=[{"x", "y", "z"}],
            covers=[["R"]],
            parent_of=[None],
        )
        assert not ghd.covers_are_valid()
        assert not ghd.is_valid()

    def test_mismatched_lengths_rejected(self, triangle):
        with pytest.raises(ValueError):
            GeneralizedHypertreeDecomposition.from_labels(
                triangle, bags=[{"x"}], covers=[["R"], ["S"]], parent_of=[None]
            )

    def test_from_td_with_greedy_covers(self, four_cycle):
        td = TreeDecomposition.from_bags(
            four_cycle, [{"w", "x", "y"}, {"w", "y", "z"}], [None, 0]
        )
        ghd = GeneralizedHypertreeDecomposition.from_td_with_greedy_covers(td)
        assert ghd.is_valid()
        assert ghd.ghd_width() == 2


class TestSpecialCondition:
    def test_h2_width3_hd_satisfies_special_condition(self):
        # A width-3 HD of H2: root covers everything relevant via 3 edges.
        h2 = hypergraph_h2()
        hd = HypertreeDecomposition.from_labels(
            h2,
            bags=[
                {"1", "2", "3", "4", "a", "b", "8"},
                {"4", "5", "6", "7", "8", "a", "b"},
            ],
            covers=[["e12a", "e23b", "e18"], ["e45a", "e67a", "e78b"]],
            parent_of=[None, 0],
        )
        # Not necessarily a valid HD of minimal width, but the special
        # condition machinery must evaluate it consistently.
        assert hd.satisfies_special_condition() == (not hd.special_condition_violations())

    def test_special_condition_violation_detected(self, four_cycle):
        # Root λ contains T = {y, z} but y is dropped from the root bag and
        # reappears in the child bag below: a violation.
        ghd = GeneralizedHypertreeDecomposition.from_labels(
            four_cycle,
            bags=[{"w", "x", "z"}, {"x", "y", "z"}],
            covers=[["R", "T"], ["S", "T"]],
            parent_of=[None, 0],
        )
        assert not ghd.satisfies_special_condition()
        violations = ghd.special_condition_violations()
        assert len(violations) == 1
        assert violations[0] is ghd.tree.root

    def test_verify_hd_requires_special_condition(self, four_cycle):
        ghd = HypertreeDecomposition.from_labels(
            four_cycle,
            bags=[{"w", "x", "z"}, {"x", "y", "z"}],
            covers=[["R", "T"], ["S", "T"]],
            parent_of=[None, 0],
        )
        assert not verify_hd(ghd)


class TestConversions:
    def test_to_tree_decomposition_drops_labels(self, triangle):
        ghd = GeneralizedHypertreeDecomposition.from_labels(
            triangle, bags=[{"x", "y", "z"}], covers=[["R", "S"]], parent_of=[None]
        )
        td = ghd.to_tree_decomposition()
        assert isinstance(td, TreeDecomposition)
        assert verify_td(td)
        assert "cover" not in td.tree.root.data
