"""Unit tests for tree decompositions."""

from repro.decompositions.td import TreeDecomposition
from repro.hypergraph.hypergraph import Hypergraph


def path_hypergraph(length):
    return Hypergraph({f"e{i}": [f"v{i}", f"v{i + 1}"] for i in range(length)})


class TestConstruction:
    def test_from_bags(self, triangle):
        td = TreeDecomposition.from_bags(triangle, [{"x", "y", "z"}], [None])
        assert td.width() == 2
        assert td.is_valid()

    def test_single_bag_decomposition_is_always_valid(self, h2):
        td = TreeDecomposition.single_bag(h2)
        assert td.is_valid()
        assert td.width() == h2.num_vertices() - 1


class TestValidity:
    def test_path_decomposition_is_valid(self):
        hypergraph = path_hypergraph(3)
        bags = [{"v0", "v1"}, {"v1", "v2"}, {"v2", "v3"}]
        td = TreeDecomposition.from_bags(hypergraph, bags, [None, 0, 1])
        assert td.covers_all_edges()
        assert td.satisfies_connectedness()
        assert td.is_valid()
        assert td.width() == 1

    def test_missing_edge_coverage_detected(self, triangle):
        td = TreeDecomposition.from_bags(
            triangle, [{"x", "y"}, {"y", "z"}], [None, 0]
        )
        assert not td.covers_all_edges()
        assert not td.is_valid()

    def test_connectedness_violation_detected(self):
        hypergraph = path_hypergraph(3)
        # v1 appears in two bags that are not adjacent.
        bags = [{"v0", "v1"}, {"v2", "v3"}, {"v1", "v2"}]
        td = TreeDecomposition.from_bags(hypergraph, bags, [None, 0, 1])
        assert not td.satisfies_connectedness()

    def test_vertex_missing_from_all_bags_detected(self):
        hypergraph = path_hypergraph(2)
        td = TreeDecomposition.from_bags(hypergraph, [{"v0", "v1"}], [None])
        assert not td.satisfies_connectedness()


class TestStructure:
    def test_subtree_vertices(self):
        hypergraph = path_hypergraph(3)
        bags = [{"v0", "v1"}, {"v1", "v2"}, {"v2", "v3"}]
        td = TreeDecomposition.from_bags(hypergraph, bags, [None, 0, 1])
        child = td.tree.root.children[0]
        assert td.subtree_vertices(child) == frozenset({"v1", "v2", "v3"})

    def test_component_normal_form_holds_for_path(self):
        hypergraph = path_hypergraph(3)
        bags = [{"v0", "v1"}, {"v1", "v2"}, {"v2", "v3"}]
        td = TreeDecomposition.from_bags(hypergraph, bags, [None, 0, 1])
        assert td.is_component_normal_form()

    def test_component_normal_form_violation(self):
        # The child's subtree covers two different components of the root bag.
        hypergraph = Hypergraph(
            {"left": ["c", "l"], "right": ["c", "r"], "mid": ["c"]}
        )
        td = TreeDecomposition.from_bags(
            hypergraph, [{"c"}, {"c", "l", "r"}], [None, 0]
        )
        assert td.is_valid()
        assert not td.is_component_normal_form()

    def test_uses_bags_from(self, triangle):
        td = TreeDecomposition.from_bags(triangle, [{"x", "y", "z"}], [None])
        assert td.uses_bags_from([frozenset({"x", "y", "z"})])
        assert not td.uses_bags_from([frozenset({"x", "y"})])

    def test_canonical_form_ignores_child_order(self, triangle):
        a = TreeDecomposition.from_bags(
            triangle, [{"x", "y", "z"}, {"x", "y"}, {"y", "z"}], [None, 0, 0]
        )
        b = TreeDecomposition.from_bags(
            triangle, [{"x", "y", "z"}, {"y", "z"}, {"x", "y"}], [None, 0, 0]
        )
        assert a.canonical_form() == b.canonical_form()

    def test_bag_multiset_sorted(self, triangle):
        td = TreeDecomposition.from_bags(
            triangle, [{"x", "y", "z"}, {"x", "y"}], [None, 0]
        )
        assert len(td.bag_multiset()) == 2
