"""Unit tests for the rooted tree skeleton."""

import pytest

from repro.decompositions.tree import RootedTree


def build_sample_tree():
    tree = RootedTree()
    root = tree.new_node(None, label="root")
    a = tree.new_node(root, label="a")
    b = tree.new_node(root, label="b")
    c = tree.new_node(a, label="c")
    return tree, root, a, b, c


class TestConstruction:
    def test_single_root(self):
        tree = RootedTree()
        root = tree.new_node(None)
        assert tree.root is root
        with pytest.raises(ValueError):
            tree.new_node(None)

    def test_root_required_for_access(self):
        tree = RootedTree()
        with pytest.raises(ValueError):
            _ = tree.root

    def test_children_and_parents(self):
        tree, root, a, b, c = build_sample_tree()
        assert c.parent is a
        assert a.parent is root
        assert root.children == [a, b]
        assert b.is_leaf() and c.is_leaf() and not a.is_leaf()


class TestTraversal:
    def test_preorder_starts_at_root(self):
        tree, root, a, b, c = build_sample_tree()
        labels = [node.data["label"] for node in tree.preorder()]
        assert labels[0] == "root"
        assert set(labels) == {"root", "a", "b", "c"}

    def test_postorder_ends_at_root(self):
        tree, root, a, b, c = build_sample_tree()
        order = list(tree.postorder())
        assert order[-1] is root
        assert order.index(c) < order.index(a)

    def test_subtree_nodes(self):
        tree, root, a, b, c = build_sample_tree()
        assert set(tree.subtree_nodes(a)) == {a, c}


class TestMetrics:
    def test_depth_and_height(self):
        tree, root, a, b, c = build_sample_tree()
        assert tree.depth(root) == 0
        assert tree.depth(c) == 2
        assert tree.height() == 2

    def test_num_nodes(self):
        tree, *_ = build_sample_tree()
        assert tree.num_nodes() == 4

    def test_path_between_nodes(self):
        tree, root, a, b, c = build_sample_tree()
        path = tree.path(c, b)
        assert [n.data["label"] for n in path] == ["c", "a", "root", "b"]
        assert tree.path(root, c)[0] is root


class TestCopying:
    def test_copy_is_structurally_equal_but_independent(self):
        tree, root, a, b, c = build_sample_tree()
        duplicate = tree.copy()
        assert duplicate.num_nodes() == tree.num_nodes()
        duplicate.root.data["label"] = "changed"
        assert tree.root.data["label"] == "root"

    def test_map_tree_transforms_payloads(self):
        tree, *_ = build_sample_tree()
        upper = tree.map_tree(lambda node: {"label": node.data["label"].upper()})
        assert upper.root.data["label"] == "ROOT"
