"""The example scripts stay importable and deprecation-free.

The examples must track the current API instead of exercising deprecated
surfaces (the PR 4 beam-era no-op parameters are now removed entirely), so
each one is executed in a subprocess with ``-W error::DeprecationWarning``
— any use of a deprecated parameter (or a stale import) fails the suite,
not just CI.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

#: Examples covered by the deprecation gate: the quickstart and the
#: constrained/distributed tour (the two touched by the PR 4/5 API churn).
EXAMPLES = ["quickstart.py", "constrained_distributed.py"]


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_without_deprecation_warnings(example):
    env = dict(os.environ)
    src = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [
            sys.executable,
            "-W",
            "error::DeprecationWarning",
            os.path.join(EXAMPLES_DIR, example),
        ],
        capture_output=True,
        text=True,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), f"{example} produced no output"
