"""Tests for the durable batch checkpoint ledger.

The crash-consistency contract: fsync'd appends survive a supervisor
``kill -9``, a torn final line is tolerated (and reported), corruption
anywhere earlier is a refusal (:class:`LedgerError`), and compaction is
atomic.  Task fingerprints are deterministic and blind to non-semantic
keys.
"""

import errno
import json
import os

import pytest

from repro.runtime.checkpoint import (
    LEDGER_VERSION,
    STATUS_FAILED,
    STATUS_OK,
    BatchLedger,
    task_fingerprint,
)
from repro.runtime.errors import LedgerError
from repro.runtime.faults import inject


def task(**overrides):
    spec = {"kind": "solve", "query": "q_hto", "scale": 0.5, "seed": None}
    spec.update(overrides)
    return spec


def task_record(fingerprint, status=STATUS_OK, **extra):
    record = {
        "type": "task",
        "fingerprint": fingerprint,
        "task": task(),
        "status": status,
        "level": "full",
        "attempts": 1,
        "failures": [],
        "result": {"ok": True},
    }
    record.update(extra)
    return record


class TestFingerprint:
    def test_deterministic_and_key_order_independent(self):
        a = {"query": "q_hto", "scale": 0.5, "width": 2}
        b = {"width": 2, "scale": 0.5, "query": "q_hto"}
        assert task_fingerprint(a) == task_fingerprint(b)
        assert len(task_fingerprint(a)) == 16

    def test_semantic_fields_change_the_fingerprint(self):
        assert task_fingerprint(task(scale=0.5)) != task_fingerprint(task(scale=1.0))
        assert task_fingerprint(task(query="q_hto")) != task_fingerprint(
            task(query="q_lb")
        )

    def test_faults_and_label_are_non_semantic(self):
        plain = task_fingerprint(task())
        assert task_fingerprint(task(faults={"1": {"kind": "sigkill"}})) == plain
        assert task_fingerprint(task(label="anything")) == plain


class TestAppendAndRead:
    def test_append_writes_header_then_records(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with BatchLedger(path) as ledger:
            ledger.append(task_record("f1"))
            ledger.append(task_record("f2"))
        with open(path, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert lines[0] == {"type": "header", "version": LEDGER_VERSION}
        assert [line["fingerprint"] for line in lines[1:]] == ["f1", "f2"]

    def test_records_round_trip(self, tmp_path):
        ledger = BatchLedger(str(tmp_path / "ledger.jsonl"))
        ledger.append(task_record("f1"))
        ledger.append({"type": "quarantine", "fingerprint": "f1", "reason": "bad"})
        ledger.close()
        records, torn = ledger.records()
        assert not torn
        assert [r["type"] for r in records] == ["task", "quarantine"]

    def test_missing_ledger_reads_empty(self, tmp_path):
        ledger = BatchLedger(str(tmp_path / "none.jsonl"))
        assert not ledger.exists()
        assert ledger.records() == ([], False)
        assert ledger.completed() == {}

    def test_torn_final_line_is_tolerated_and_reported(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with BatchLedger(path) as ledger:
            ledger.append(task_record("f1"))
            ledger.append(task_record("f2"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "task", "fingerpr')  # torn mid-append
        ledger = BatchLedger(path)
        records, torn = ledger.records()
        assert torn
        assert [r["fingerprint"] for r in records] == ["f1", "f2"]
        assert set(ledger.completed()) == {"f1", "f2"}

    def test_corruption_before_the_tail_is_refused(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with BatchLedger(path) as ledger:
            ledger.append(task_record("f1"))
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        lines.insert(1, "GARBAGE\n")
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(LedgerError):
            BatchLedger(path).records()

    def test_non_dict_line_in_the_middle_is_refused(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with BatchLedger(path) as ledger:
            ledger.append(task_record("f1"))
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        lines.insert(1, "[1, 2, 3]\n")
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(LedgerError):
            BatchLedger(path).records()

    def test_version_mismatch_is_refused(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"type": "header", "version": 999}) + "\n")
            handle.write(json.dumps(task_record("f1")) + "\n")
        with pytest.raises(LedgerError):
            BatchLedger(path).records()

    def test_foreign_file_without_header_is_refused(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"hello": "world"}) + "\n")
        with pytest.raises(LedgerError):
            BatchLedger(path).records()

    def test_append_fault_site_fires(self, tmp_path):
        ledger = BatchLedger(str(tmp_path / "ledger.jsonl"))
        with inject() as plan:
            plan.fail("ledger.append", exc=OSError(errno.ENOSPC, "full"))
            with pytest.raises(OSError):
                ledger.append(task_record("f1"))
            assert plan.remaining() == {}
        ledger.close()


class TestResumeState:
    def test_latest_task_record_wins(self, tmp_path):
        ledger = BatchLedger(str(tmp_path / "ledger.jsonl"))
        ledger.append(task_record("f1", status=STATUS_FAILED))
        ledger.append(task_record("f1", status=STATUS_OK, attempts=3))
        ledger.close()
        latest = ledger.task_records()
        assert latest["f1"]["status"] == STATUS_OK
        assert latest["f1"]["attempts"] == 3

    def test_completed_excludes_failed_and_interrupted(self, tmp_path):
        ledger = BatchLedger(str(tmp_path / "ledger.jsonl"))
        ledger.append(task_record("ok"))
        ledger.append(task_record("bad", status=STATUS_FAILED))
        ledger.append(task_record("cut", status="interrupted"))
        ledger.close()
        assert set(ledger.completed()) == {"ok"}

    def test_quarantined_records_are_listed(self, tmp_path):
        ledger = BatchLedger(str(tmp_path / "ledger.jsonl"))
        ledger.append({"type": "quarantine", "fingerprint": "f1", "reason": "x"})
        ledger.append(task_record("f1"))
        ledger.close()
        assert len(ledger.quarantined()) == 1


class TestCompaction:
    def test_compact_keeps_latest_per_task_and_quarantines(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        ledger = BatchLedger(path)
        ledger.append(task_record("f1", status=STATUS_FAILED))
        ledger.append({"type": "quarantine", "fingerprint": "f1", "reason": "x"})
        ledger.append(task_record("f2"))
        ledger.append(task_record("f1", status=STATUS_OK))
        ledger.append({"type": "batch", "event": "interrupted"})
        kept = ledger.compact()
        assert kept == 3  # f1 (latest), quarantine, f2; the batch event dropped
        records, torn = ledger.records()
        assert not torn
        by_type = [r["type"] for r in records]
        assert by_type.count("task") == 2 and by_type.count("quarantine") == 1
        assert BatchLedger(path).task_records()["f1"]["status"] == STATUS_OK

    def test_compact_preserves_first_seen_task_order(self, tmp_path):
        ledger = BatchLedger(str(tmp_path / "ledger.jsonl"))
        ledger.append(task_record("b", status=STATUS_FAILED))
        ledger.append(task_record("a"))
        ledger.append(task_record("b", status=STATUS_OK))
        ledger.compact()
        records, _ = ledger.records()
        assert [r["fingerprint"] for r in records if r["type"] == "task"] == ["b", "a"]

    def test_compact_is_idempotent(self, tmp_path):
        ledger = BatchLedger(str(tmp_path / "ledger.jsonl"))
        ledger.append(task_record("f1"))
        first = ledger.compact()
        assert ledger.compact() == first

    def test_append_after_compact_does_not_duplicate_header(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        ledger = BatchLedger(path)
        ledger.append(task_record("f1"))
        ledger.compact()
        ledger.append(task_record("f2"))
        ledger.close()
        with open(path, "r", encoding="utf-8") as handle:
            headers = [
                line for line in handle if json.loads(line)["type"] == "header"
            ]
        assert len(headers) == 1

    def test_compact_leaves_no_temp_files(self, tmp_path):
        ledger = BatchLedger(str(tmp_path / "ledger.jsonl"))
        ledger.append(task_record("f1"))
        ledger.compact()
        assert [f for f in os.listdir(tmp_path) if ".tmp" in f] == []
