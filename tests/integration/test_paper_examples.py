"""Integration tests reproducing the paper's worked examples.

* Example 1 / Figure 1: ``H2`` with ``ghw = shw = 2 < hw = 3`` and the
  explicit width-2 soft decomposition.
* Appendix A.2 / Figures 8–9: ``H3`` and its explicit width-3 soft
  decomposition, including the λ-witnesses for the tricky bags.
* Example 2 / Figure 2: on ``H3'`` the subedge ``hor1 \\ {4'}`` enters
  ``E^(1)`` through the special-condition-violation mechanism.
* Section 6 / Example 3: the 4-cycle and the ConCov constraint.
* The extended width hierarchy (Section 8).
"""

import pytest

from repro.baselines.detkdecomp import hw_leq, hypertree_width
from repro.baselines.fhw import fhw_upper_bound
from repro.baselines.ghw import generalized_hypertree_width
from repro.core.candidate_bags import SoftBagGenerator, soft_bag, soft_candidate_bags
from repro.core.soft import certify_soft_decomposition, shw_leq, soft_hypertree_width
from repro.decompositions.width import bag_cover_number
from repro.experiments.paper_witnesses import (
    h2_bag_witnesses,
    h2_soft_decomposition,
    h3_bag_witnesses,
    h3_soft_decomposition,
)
from repro.hypergraph.components import component_vertices, edge_components


class TestExample1H2:
    def test_width_facts(self, h2):
        assert soft_hypertree_width(h2)[0] == 2
        assert generalized_hypertree_width(h2)[0] == 2
        assert hypertree_width(h2) == 3

    def test_figure1b_decomposition_is_a_width2_soft_decomposition(self, h2):
        decomposition = h2_soft_decomposition(h2)
        assert decomposition.is_valid()
        assert certify_soft_decomposition(h2, decomposition, 2)
        assert all(bag_cover_number(h2, bag) <= 2 for bag in decomposition.bags())

    def test_figure1b_bag_witnesses(self, h2):
        for witness in h2_bag_witnesses():
            lambda1 = [h2.edge(name) for name in witness["lambda1"]]
            lambda2 = [h2.edge(name) for name in witness["lambda2"]]
            separator = h2.vertices_of(lambda2)
            components = edge_components(h2, separator)
            produced = {
                frozenset(h2.vertices_of(lambda1) & component_vertices(component))
                for component in components
            }
            assert witness["bag"] in produced

    def test_no_width2_hd_exists(self, h2):
        assert not hw_leq(h2, 2)
        assert hw_leq(h2, 3)


class TestAppendixA2H3:
    def test_figure9_is_a_valid_width3_ghd_skeleton(self, h3):
        decomposition = h3_soft_decomposition(h3)
        assert decomposition.is_valid()
        assert all(bag_cover_number(h3, bag) <= 3 for bag in decomposition.bags())

    def test_figure9_bag_witnesses_are_in_soft(self, h3):
        # Appendix A.2 gives explicit λ1/λ2 witnesses for the root bag and
        # the bag G ∪ H ∪ {2, 4}; check them via Definition 3 directly.
        for witness in h3_bag_witnesses():
            lambda1 = [h3.edge(name) for name in witness["lambda1"]]
            lambda2 = [h3.edge(name) for name in witness["lambda2"]]
            separator = h3.vertices_of(lambda2)
            components = edge_components(h3, separator)
            produced = {
                frozenset(h3.vertices_of(lambda1) & component_vertices(component))
                for component in components
            }
            assert witness["bag"] in produced

    def test_h3_prime_differs_only_in_one_edge(self, h3, h3_prime):
        assert h3_prime.num_edges() == h3.num_edges() + 1


class TestExample2SubedgeGeneration:
    def test_hor1_minus_4p_enters_level_one_subedges(self, h3_prime):
        """Figure 2c: the subedge ``hor1 \\ {4'}`` lies in ``E^(1)`` of ``H3'``.

        ``E^(1) = E ⋂× Soft^0_{H3',3}``, so it suffices to exhibit one bag of
        ``Soft^0_{H3',3}`` that contains the rest of ``hor1`` but not ``4'``;
        we build such a bag from the two vertical edges plus {0',1'} via
        Definition 3 and intersect ``hor1`` with it.
        """
        hor1 = h3_prime.edge("hor1")
        bag = soft_bag(
            h3_prime,
            lambda1=[
                h3_prime.edge("vert1"),
                h3_prime.edge("vert2"),
                h3_prime.edge("e0p1p"),
            ],
            lambda2=[
                h3_prime.edge("hor1"),
                h3_prime.edge("hor2"),
                h3_prime.edge("e2p4p"),
            ],
        )
        assert "4p" not in bag
        subedge = hor1.vertices & bag
        assert subedge == hor1.vertices - {"4p"}


class TestExample3FourCycle:
    def test_width2_decompositions_exist_but_may_force_cartesian_products(self, four_cycle):
        assert soft_hypertree_width(four_cycle)[0] == 2
        bags = soft_candidate_bags(four_cycle, 2)
        assert frozenset({"w", "x", "y", "z"}) in bags

    def test_d2_style_decomposition_has_connected_covers(self, four_cycle):
        from repro.core.covers import has_connected_cover

        assert has_connected_cover(four_cycle, {"x", "y", "z"}, 2)
        assert not has_connected_cover(four_cycle, {"w", "x", "y", "z"}, 2)


class TestWidthHierarchy:
    def test_extended_hierarchy_on_small_hypergraphs(self, triangle, four_cycle, c5, h2):
        # fhw ≤ ghw = shw_∞ ≤ shw_1 ≤ shw_0 ≤ hw ≤ 3·ghw + 1 (Section 8).
        for hypergraph in (triangle, four_cycle, c5, h2):
            hw = hypertree_width(hypergraph)
            shw0, witness0 = soft_hypertree_width(hypergraph, iterations=0)
            shw1, _ = soft_hypertree_width(hypergraph, iterations=1)
            ghw, ghw_witness = generalized_hypertree_width(hypergraph)
            fhw_bound = fhw_upper_bound(ghw_witness)
            assert fhw_bound <= ghw + 1e-9
            assert ghw <= shw1 <= shw0 <= hw
            assert hw <= 3 * ghw + 1

    def test_soft_fixpoint_reaches_ghw_on_h2(self, h2):
        # Theorem 7: shw_∞ = ghw; for H2 the fixpoint candidate bags admit a
        # width-2 CTD (= ghw(H2)).
        generator = SoftBagGenerator(h2, 2)
        bags = generator.fixpoint_candidate_bags(max_level=4)
        from repro.core.ctd import candidate_td

        assert candidate_td(h2, bags) is not None
