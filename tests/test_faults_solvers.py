"""Fault-injection tests: every governed loop honours its budget.

For each unbounded loop in the stack — candidate-bag generation, the
Algorithm 1 and Algorithm 2 fixpoints, the any-k enumerator and Yannakakis
execution — these tests prove three things with deterministic budgets
(scripted work caps, fake clocks):

1. *Termination*: the loop stops within one amortization window of
   exhaustion, whatever the budget.
2. *Anytime validity*: whatever an exhausted run returns is a valid
   prefix/subset/witness with respect to the unbudgeted answer — never a
   wrong answer dressed up as a real one.
3. *Transparency*: a generous budget changes nothing — same answers as the
   ungoverned run, with a ``complete`` outcome.

A clock that raises ``KeyboardInterrupt`` doubles as the Ctrl-C fault
injector: governed solvers must convert the interrupt into an
``interrupted`` outcome instead of losing their partial state.
"""

import pytest

from repro.core.candidate_bags import SoftBagGenerator, soft_candidate_bags
from repro.core.constrained import ConstrainedCTDSolver
from repro.core.constraints import ConnectedCoverConstraint
from repro.core.ctd import CandidateTDSolver
from repro.core.enumerate import CTDEnumerator, enumerate_ctds
from repro.core.preferences import NodeCountPreference
from repro.core.soft import soft_hypertree_width
from repro.db.yannakakis import run_yannakakis
from repro.runtime.budget import (
    Budget,
    STATUS_BUDGET,
    STATUS_COMPLETE,
    STATUS_DEADLINE,
    STATUS_INTERRUPTED,
)
from repro.runtime.faults import FakeClock

GENEROUS = 10**9

#: Work-cap sweep used by the anytime tests: from "exhaust immediately"
#: through "exhaust somewhere in the middle" to "barely constrained".
WORK_CAPS = [0, 1, 2, 5, 10, 25, 50, 100, 250, 1000, 5000]


class InterruptingClock:
    """A clock that raises KeyboardInterrupt on its ``n``-th read.

    Models one Ctrl-C press landing mid-loop: exactly one read raises,
    later reads (e.g. the outcome's elapsed-time stamp) proceed normally.
    """

    def __init__(self, interrupt_at: int):
        self.interrupt_at = interrupt_at
        self.reads = 0

    def __call__(self) -> float:
        self.reads += 1
        if self.reads == self.interrupt_at:
            raise KeyboardInterrupt
        return float(self.reads)


def forms(decompositions):
    return [d.canonical_form() for d in decompositions]


class TestCandidateBagsGoverned:
    def test_budgeted_bags_are_a_subset(self, h3):
        full = soft_candidate_bags(h3, 2)
        for cap in WORK_CAPS:
            budget = Budget(max_work=cap)
            bags = soft_candidate_bags(h3, 2, budget=budget)
            assert bags <= full

    def test_generous_budget_changes_nothing(self, h3):
        budget = Budget(max_work=GENEROUS)
        assert soft_candidate_bags(h3, 2, budget=budget) == soft_candidate_bags(h3, 2)
        assert budget.status == STATUS_COMPLETE
        assert budget.work > 0

    def test_truncated_flag_reports_exhaustion(self, h3):
        generator = SoftBagGenerator(h3, 2, budget=Budget(max_work=3))
        generator.candidate_bags(0)
        assert generator.truncated
        full = SoftBagGenerator(h3, 2, budget=Budget(max_work=GENEROUS))
        full.candidate_bags(0)
        assert not full.truncated

    def test_iterated_generation_is_governed(self, h3):
        full = SoftBagGenerator(h3, 2).candidate_bags(2)
        budget = Budget(max_work=50)
        bags = SoftBagGenerator(h3, 2, budget=budget).candidate_bags(2)
        assert bags <= full


class TestAlgorithm1Governed:
    def test_anytime_answer_is_sound(self, h2):
        bags = soft_candidate_bags(h2, 2)
        reference = CandidateTDSolver(h2, bags).solve()
        assert reference is not None
        for cap in WORK_CAPS:
            solver = CandidateTDSolver(h2, bags, budget=Budget(max_work=cap))
            decomposition, outcome = solver.solve_with_outcome()
            if decomposition is not None:
                # A witness from an exhausted run is still a real witness.
                assert decomposition.is_valid()
                assert decomposition.uses_bags_from(bags)
            else:
                # "None" from a partial run is inconclusive, and the
                # outcome says so.
                assert outcome.partial

    def test_generous_budget_matches_ungoverned(self, h2):
        bags = soft_candidate_bags(h2, 2)
        budget = Budget(max_work=GENEROUS)
        solver = CandidateTDSolver(h2, bags, budget=budget)
        decomposition, outcome = solver.solve_with_outcome()
        assert decomposition is not None
        assert outcome.complete
        assert outcome.work > 0
        reference = CandidateTDSolver(h2, bags).solve()
        assert decomposition.canonical_form() == reference.canonical_form()

    def test_expired_deadline_stops_within_one_window(self, h2):
        bags = soft_candidate_bags(h2, 2)
        interval = 16
        budget = Budget(
            deadline=0.0,
            clock=FakeClock(auto_advance=0.001),
            check_interval=interval,
        )
        solver = CandidateTDSolver(h2, bags, budget=budget)
        decomposition, outcome = solver.solve_with_outcome()
        assert outcome.status == STATUS_DEADLINE
        # The fixpoint did at most one window of ticks — plus the one
        # in-flight probe batch, itself capped at ``check_interval`` —
        # before the first clock read exposed the expired deadline.
        assert budget.work <= 2 * interval

    def test_keyboard_interrupt_becomes_outcome(self, h2):
        bags = soft_candidate_bags(h2, 2)
        budget = Budget(
            deadline=GENEROUS, clock=InterruptingClock(3), check_interval=1
        )
        solver = CandidateTDSolver(h2, bags, budget=budget)
        decomposition, outcome = solver.solve_with_outcome()
        assert outcome.status == STATUS_INTERRUPTED
        assert outcome.exit_code == 130

    def test_interrupt_without_budget_propagates(self, h2):
        # Ungoverned runs must not swallow Ctrl-C.  (Simulated by calling
        # the fixpoint under an interrupting budget-less path is not
        # possible, so this guards the governed-only conversion contract.)
        bags = soft_candidate_bags(h2, 2)
        solver = CandidateTDSolver(h2, bags)
        assert solver.solve() is not None  # sanity: no budget, no outcome magic
        assert solver.outcome.complete


class TestAlgorithm2Governed:
    def _solver(self, hypergraph, bags, budget=None):
        constraint = ConnectedCoverConstraint(hypergraph, 2)
        preference = NodeCountPreference()
        return ConstrainedCTDSolver(
            hypergraph, bags, constraint, preference, budget=budget
        )

    def test_anytime_answer_is_sound(self, four_cycle):
        bags = soft_candidate_bags(four_cycle, 2)
        constraint = ConnectedCoverConstraint(four_cycle, 2)
        reference = self._solver(four_cycle, bags).solve()
        assert reference is not None
        for cap in WORK_CAPS:
            solver = self._solver(four_cycle, bags, budget=Budget(max_work=cap))
            decomposition, outcome = solver.solve_with_outcome()
            if decomposition is not None:
                assert decomposition.is_valid()
                assert decomposition.uses_bags_from(bags)
                assert constraint.holds_recursively(decomposition)
            else:
                assert outcome.partial

    def test_generous_budget_finds_the_optimum(self, four_cycle):
        bags = soft_candidate_bags(four_cycle, 2)
        budget = Budget(max_work=GENEROUS)
        governed = self._solver(four_cycle, bags, budget=budget)
        decomposition, outcome = governed.solve_with_outcome()
        assert outcome.complete
        reference = self._solver(four_cycle, bags)
        reference.solve()
        assert governed.optimal_key() == reference.optimal_key()
        assert decomposition.canonical_form() is not None

    def test_expired_deadline_stops_within_one_window(self, four_cycle):
        bags = soft_candidate_bags(four_cycle, 2)
        interval = 16
        budget = Budget(
            deadline=0.0,
            clock=FakeClock(auto_advance=0.001),
            check_interval=interval,
        )
        solver = self._solver(four_cycle, bags, budget=budget)
        _, outcome = solver.solve_with_outcome()
        assert outcome.status == STATUS_DEADLINE
        assert budget.work <= interval

    def test_keyboard_interrupt_becomes_outcome(self, four_cycle):
        bags = soft_candidate_bags(four_cycle, 2)
        budget = Budget(
            deadline=GENEROUS, clock=InterruptingClock(4), check_interval=1
        )
        solver = self._solver(four_cycle, bags, budget=budget)
        _, outcome = solver.solve_with_outcome()
        assert outcome.status == STATUS_INTERRUPTED

    def test_budget_cannot_be_swapped_after_solving(self, four_cycle):
        bags = soft_candidate_bags(four_cycle, 2)
        solver = self._solver(four_cycle, bags)
        solver.solve()
        with pytest.raises(RuntimeError):
            solver.solve(budget=Budget(max_work=10))


class TestEnumeratorGoverned:
    def test_budgeted_enumeration_is_an_exact_prefix(self, four_cycle):
        bags = soft_candidate_bags(four_cycle, 2)
        preference = NodeCountPreference()
        full = enumerate_ctds(four_cycle, bags, preference=preference, limit=10)
        assert len(full) >= 2
        for cap in WORK_CAPS:
            budget = Budget(max_work=cap)
            budgeted = enumerate_ctds(
                four_cycle, bags, preference=preference, limit=10, budget=budget
            )
            assert forms(budgeted) == forms(full)[: len(budgeted)]

    def test_generous_budget_matches_ungoverned(self, four_cycle):
        bags = soft_candidate_bags(four_cycle, 2)
        preference = NodeCountPreference()
        full = enumerate_ctds(four_cycle, bags, preference=preference, limit=10)
        budget = Budget(max_work=GENEROUS)
        governed = enumerate_ctds(
            four_cycle, bags, preference=preference, limit=10, budget=budget
        )
        assert forms(governed) == forms(full)
        assert budget.status == STATUS_COMPLETE

    def test_outcome_reports_exhaustion(self, four_cycle):
        bags = soft_candidate_bags(four_cycle, 2)
        enumerator = CTDEnumerator(
            four_cycle, bags, preference=NodeCountPreference(), budget=Budget(max_work=5)
        )
        results = list(enumerator.iter_decompositions())
        assert enumerator.outcome.status == STATUS_BUDGET
        assert enumerator.outcome.partial

    def test_expired_deadline_stops_within_one_window(self, four_cycle):
        bags = soft_candidate_bags(four_cycle, 2)
        interval = 16
        budget = Budget(
            deadline=0.0,
            clock=FakeClock(auto_advance=0.001),
            check_interval=interval,
        )
        results = enumerate_ctds(four_cycle, bags, limit=10, budget=budget)
        assert budget.status == STATUS_DEADLINE
        assert budget.work <= interval

    def test_keyboard_interrupt_becomes_outcome(self, four_cycle):
        bags = soft_candidate_bags(four_cycle, 2)
        budget = Budget(
            deadline=GENEROUS, clock=InterruptingClock(5), check_interval=1
        )
        enumerator = CTDEnumerator(four_cycle, bags, budget=budget)
        results = list(enumerator.iter_decompositions())
        assert enumerator.outcome.status == STATUS_INTERRUPTED


class TestYannakakisGoverned:
    def _decomposition(self, query):
        hypergraph = query.hypergraph()
        tds = enumerate_ctds(
            hypergraph, [frozenset(hypergraph.vertices)], limit=1
        )
        assert tds
        return tds[0]

    def test_partial_run_returns_no_result(self, triangle_database, triangle_query):
        decomposition = self._decomposition(triangle_query)
        run = run_yannakakis(
            triangle_database,
            triangle_query,
            decomposition,
            budget=Budget(max_work=3),
        )
        assert run.outcome.status == STATUS_BUDGET
        assert run.outcome.partial
        # Never a silently wrong partial answer.
        assert run.result is None
        assert run.work > 0

    def test_generous_budget_matches_ungoverned(
        self, triangle_database, triangle_query
    ):
        decomposition = self._decomposition(triangle_query)
        reference = run_yannakakis(triangle_database, triangle_query, decomposition)
        budget = Budget(max_work=GENEROUS)
        governed = run_yannakakis(
            triangle_database, triangle_query, decomposition, budget=budget
        )
        assert governed.result == reference.result
        assert governed.work == reference.work
        assert governed.outcome.complete
        assert governed.outcome.work == reference.work

    def test_expired_deadline_stops_before_any_stage(
        self, triangle_database, triangle_query
    ):
        decomposition = self._decomposition(triangle_query)
        budget = Budget(
            deadline=0.0, clock=FakeClock(auto_advance=0.001), check_interval=4
        )
        run = run_yannakakis(
            triangle_database, triangle_query, decomposition, budget=budget
        )
        assert run.outcome.status == STATUS_DEADLINE
        assert run.result is None

    def test_keyboard_interrupt_becomes_outcome(
        self, triangle_database, triangle_query
    ):
        decomposition = self._decomposition(triangle_query)
        budget = Budget(
            deadline=GENEROUS, clock=InterruptingClock(2), check_interval=1
        )
        run = run_yannakakis(
            triangle_database, triangle_query, decomposition, budget=budget
        )
        assert run.outcome.status == STATUS_INTERRUPTED
        assert run.result is None


class TestPipelineGoverned:
    def test_soft_hypertree_width_stops_searching_when_exhausted(self, h2):
        budget = Budget(max_work=5)
        with pytest.raises(ValueError):
            soft_hypertree_width(h2, budget=budget)
        assert budget.status == STATUS_BUDGET

    def test_soft_hypertree_width_with_generous_budget(self, h2):
        budget = Budget(max_work=GENEROUS)
        k, decomposition = soft_hypertree_width(h2, budget=budget)
        reference_k, _ = soft_hypertree_width(h2)
        assert k == reference_k
        assert decomposition.is_valid()
        assert budget.status == STATUS_COMPLETE

    def test_one_budget_spans_the_whole_experiment(
        self, triangle_database, triangle_query
    ):
        from repro.experiments.harness import QueryExperiment

        budget = Budget(max_work=GENEROUS)
        experiment = QueryExperiment(
            triangle_database, triangle_query, width=2, budget=budget
        )
        decompositions, _ = experiment.ranked_decompositions(cost="none", limit=3)
        assert decompositions
        work_after_enumeration = budget.work
        assert work_after_enumeration > 0
        reference = QueryExperiment(triangle_database, triangle_query, width=2)
        assert forms(decompositions) == forms(
            reference.ranked_decompositions(cost="none", limit=3)[0]
        )

    def test_exhausted_experiment_degrades_gracefully(
        self, triangle_database, triangle_query
    ):
        from repro.experiments.harness import QueryExperiment

        budget = Budget(max_work=2)
        experiment = QueryExperiment(
            triangle_database, triangle_query, width=2, budget=budget
        )
        decompositions, _ = experiment.ranked_decompositions(cost="none", limit=3)
        assert decompositions == []
        assert budget.status == STATUS_BUDGET
