"""Unit tests for preference orders (toptds)."""

from repro.core.preferences import (
    CostPreference,
    LexicographicPreference,
    MaxBagSizePreference,
    NodeCountPreference,
    NoPreference,
    ShallowCyclicityPreference,
)
from repro.decompositions.td import TreeDecomposition


def two_decompositions(four_cycle):
    small = TreeDecomposition.from_bags(
        four_cycle, [{"w", "x", "y", "z"}], [None]
    )
    chain = TreeDecomposition.from_bags(
        four_cycle, [{"w", "x", "y"}, {"w", "y", "z"}], [None, 0]
    )
    return small, chain


class TestBasicPreferences:
    def test_no_preference_never_strictly_better(self, four_cycle):
        a, b = two_decompositions(four_cycle)
        preference = NoPreference()
        assert not preference.is_strictly_better(a, b)
        assert not preference.is_strictly_better(b, a)

    def test_node_count_preference(self, four_cycle):
        single, chain = two_decompositions(four_cycle)
        preference = NodeCountPreference()
        assert preference.is_strictly_better(single, chain)

    def test_max_bag_size_preference(self, four_cycle):
        single, chain = two_decompositions(four_cycle)
        preference = MaxBagSizePreference()
        assert preference.is_strictly_better(chain, single)

    def test_cost_preference_uses_callable(self, four_cycle):
        single, chain = two_decompositions(four_cycle)
        preference = CostPreference(lambda td: td.tree.num_nodes() * 10)
        assert preference.key(single) == 10
        assert preference.is_strictly_better(single, chain)


class TestShallowCyclicityPreference:
    def test_orders_by_cyclicity_depth(self, four_cycle):
        shallow = TreeDecomposition.from_bags(
            four_cycle, [{"w", "x", "y", "z"}, {"x", "y"}], [None, 0]
        )
        deep = TreeDecomposition.from_bags(
            four_cycle, [{"x", "y"}, {"w", "x", "y", "z"}], [None, 0]
        )
        preference = ShallowCyclicityPreference(four_cycle)
        assert preference.key(shallow) == 0
        assert preference.key(deep) == 1
        assert preference.is_strictly_better(shallow, deep)


class TestLexicographicPreference:
    def test_first_component_dominates(self, four_cycle):
        single, chain = two_decompositions(four_cycle)
        preference = LexicographicPreference(
            [MaxBagSizePreference(), NodeCountPreference()]
        )
        assert preference.is_strictly_better(chain, single)

    def test_tie_broken_by_second_component(self, four_cycle):
        a = TreeDecomposition.from_bags(
            four_cycle, [{"w", "x", "y"}, {"w", "y", "z"}], [None, 0]
        )
        b = TreeDecomposition.from_bags(
            four_cycle, [{"w", "x", "y"}, {"w", "y", "z"}, {"w", "y"}], [None, 0, 1]
        )
        preference = LexicographicPreference(
            [MaxBagSizePreference(), NodeCountPreference()]
        )
        assert preference.is_strictly_better(a, b)
