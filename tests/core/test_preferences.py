"""Unit tests for preference orders (toptds)."""

from repro.core.fragments import fragment_to_decomposition, make_fragment
from repro.core.preferences import (
    CostPreference,
    LexicographicPreference,
    MaxBagSizePreference,
    MonotoneCostPreference,
    NodeCountPreference,
    NoPreference,
    ShallowCyclicityPreference,
)
from repro.decompositions.td import TreeDecomposition
from repro.decompositions.tree import RootedTree


def two_decompositions(four_cycle):
    small = TreeDecomposition.from_bags(
        four_cycle, [{"w", "x", "y", "z"}], [None]
    )
    chain = TreeDecomposition.from_bags(
        four_cycle, [{"w", "x", "y"}, {"w", "y", "z"}], [None, 0]
    )
    return small, chain


class TestBasicPreferences:
    def test_no_preference_never_strictly_better(self, four_cycle):
        a, b = two_decompositions(four_cycle)
        preference = NoPreference()
        assert not preference.is_strictly_better(a, b)
        assert not preference.is_strictly_better(b, a)

    def test_node_count_preference(self, four_cycle):
        single, chain = two_decompositions(four_cycle)
        preference = NodeCountPreference()
        assert preference.is_strictly_better(single, chain)

    def test_max_bag_size_preference(self, four_cycle):
        single, chain = two_decompositions(four_cycle)
        preference = MaxBagSizePreference()
        assert preference.is_strictly_better(chain, single)

    def test_cost_preference_uses_callable(self, four_cycle):
        single, chain = two_decompositions(four_cycle)
        preference = CostPreference(lambda td: td.tree.num_nodes() * 10)
        assert preference.key(single) == 10
        assert preference.is_strictly_better(single, chain)


class TestShallowCyclicityPreference:
    def test_orders_by_cyclicity_depth(self, four_cycle):
        shallow = TreeDecomposition.from_bags(
            four_cycle, [{"w", "x", "y", "z"}, {"x", "y"}], [None, 0]
        )
        deep = TreeDecomposition.from_bags(
            four_cycle, [{"x", "y"}, {"w", "x", "y", "z"}], [None, 0]
        )
        preference = ShallowCyclicityPreference(four_cycle)
        assert preference.key(shallow) == 0
        assert preference.key(deep) == 1
        assert preference.is_strictly_better(shallow, deep)


class TestMonotoneComposition:
    """``fragment_state``/``state_key`` must agree with ``key`` on materialised TDs."""

    def _fragments(self):
        leaf_a = make_fragment(frozenset({"x", "y"}), ())
        leaf_b = make_fragment(frozenset({"w", "x", "y", "z"}), ())
        inner = make_fragment(frozenset({"w", "y", "z"}), (leaf_a,))
        root = make_fragment(frozenset({"w", "x", "y"}), (inner, leaf_b))
        return [leaf_a, leaf_b, inner, root]

    def _assert_composition_matches(self, four_cycle, preference):
        assert preference.monotone
        states = {}
        for fragment in self._fragments():
            bag, children = fragment
            states[fragment] = preference.fragment_state(
                bag, [states[child] for child in children]
            )
            decomposition = fragment_to_decomposition(four_cycle, fragment)
            assert preference.state_key(states[fragment]) == preference.key(
                decomposition
            )

    def test_no_preference(self, four_cycle):
        self._assert_composition_matches(four_cycle, NoPreference())

    def test_node_count(self, four_cycle):
        self._assert_composition_matches(four_cycle, NodeCountPreference())

    def test_max_bag_size(self, four_cycle):
        self._assert_composition_matches(four_cycle, MaxBagSizePreference())

    def test_shallow_cyclicity(self, four_cycle):
        self._assert_composition_matches(four_cycle, ShallowCyclicityPreference(four_cycle))

    def test_monotone_cost(self, four_cycle):
        preference = MonotoneCostPreference(
            node_cost=lambda bag: len(bag) ** 2,
            edge_cost=lambda parent, child: len(parent & child) + 1,
        )
        self._assert_composition_matches(four_cycle, preference)

    def test_lexicographic_combination(self, four_cycle):
        preference = LexicographicPreference(
            [MaxBagSizePreference(), NodeCountPreference()]
        )
        self._assert_composition_matches(four_cycle, preference)

    def test_lexicographic_monotone_only_if_all_parts_are(self, four_cycle):
        mixed = LexicographicPreference(
            [MaxBagSizePreference(), CostPreference(lambda td: 0.0)]
        )
        assert not mixed.monotone

    def test_generic_cost_preference_is_not_monotone(self):
        assert not CostPreference(lambda td: 0.0).monotone


class TestMaxBagSizeEmptyDecomposition:
    def test_key_of_bagless_partial_decomposition_is_zero(self, four_cycle):
        empty = TreeDecomposition(four_cycle, RootedTree())
        assert MaxBagSizePreference().key(empty) == 0


class TestLexicographicPreference:
    def test_first_component_dominates(self, four_cycle):
        single, chain = two_decompositions(four_cycle)
        preference = LexicographicPreference(
            [MaxBagSizePreference(), NodeCountPreference()]
        )
        assert preference.is_strictly_better(chain, single)

    def test_tie_broken_by_second_component(self, four_cycle):
        a = TreeDecomposition.from_bags(
            four_cycle, [{"w", "x", "y"}, {"w", "y", "z"}], [None, 0]
        )
        b = TreeDecomposition.from_bags(
            four_cycle, [{"w", "x", "y"}, {"w", "y", "z"}, {"w", "y"}], [None, 0, 1]
        )
        preference = LexicographicPreference(
            [MaxBagSizePreference(), NodeCountPreference()]
        )
        assert preference.is_strictly_better(a, b)
