"""Unit tests for Algorithm 2: constrained and preference-optimised CTDs."""

from repro.core.candidate_bags import soft_candidate_bags
from repro.core.constrained import ConstrainedCTDSolver, constrained_candidate_td
from repro.core.constraints import (
    ConnectedCoverConstraint,
    PartitionClusteringConstraint,
    ShallowCyclicityConstraint,
)
from repro.core.preferences import (
    CostPreference,
    MaxBagSizePreference,
    MonotoneCostPreference,
    NodeCountPreference,
    ShallowCyclicityPreference,
)
from repro.core.reference import reference_constrained_ctd
from repro.core.soft import shw_leq, soft_hypertree_width
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.library import cycle_hypergraph, example4_query


class TestUnconstrainedBehaviour:
    def test_matches_algorithm1_when_unconstrained(self, h2):
        bags = soft_candidate_bags(h2, 2)
        assert constrained_candidate_td(h2, bags) is not None
        bags1 = soft_candidate_bags(h2, 1)
        assert constrained_candidate_td(h2, bags1) is None

    def test_preference_optimises_node_count(self, triangle):
        bags = soft_candidate_bags(triangle, 2)
        best = constrained_candidate_td(
            triangle, bags, preference=NodeCountPreference()
        )
        assert best is not None
        assert best.tree.num_nodes() == 1


class TestConCovConstrainedWidth:
    def test_c5_concov_shw_is_3(self, c5):
        # Section 6: hw(C5) = 2 but ConCov-shw(C5) = 3.
        assert soft_hypertree_width(c5)[0] == 2
        for k, expected in ((2, False), (3, True)):
            constraint = ConnectedCoverConstraint(c5, k)
            bags = soft_candidate_bags(c5, k)
            result = constrained_candidate_td(c5, bags, constraint=constraint)
            assert (result is not None) == expected
            if result is not None:
                assert constraint.holds_recursively(result)

    def test_four_cycle_concov_width_2_avoids_cartesian_bags(self, four_cycle):
        # Example 3: the 4-cycle has width-2 decompositions that force a
        # Cartesian product (D1, D3) and ones that do not (D2).  Under the
        # ConCov constraint the solver must return one of the latter.
        constraint = ConnectedCoverConstraint(four_cycle, 2)
        result = constrained_candidate_td(
            four_cycle, soft_candidate_bags(four_cycle, 2), constraint=constraint
        )
        assert result is not None
        assert result.is_valid()
        assert constraint.holds_recursively(result)
        assert frozenset({"w", "x", "y", "z"}) not in result.bags()

    def test_h2_concov_increases_width_to_3(self, h2):
        # shw(H2) = 2, but the width-2 soft bags (e.g. {2,6,7,a,b}) only have
        # disconnected 2-edge covers, so the ConCov constraint pushes the
        # width up to 3 — another instance of the width increase Section 6
        # discusses for C5.
        constraint2 = ConnectedCoverConstraint(h2, 2)
        assert (
            constrained_candidate_td(
                h2, soft_candidate_bags(h2, 2), constraint=constraint2
            )
            is None
        )
        constraint3 = ConnectedCoverConstraint(h2, 3)
        result = constrained_candidate_td(
            h2, soft_candidate_bags(h2, 3), constraint=constraint3
        )
        assert result is not None
        assert result.is_valid()
        assert constraint3.holds_recursively(result)


class TestShallowCyclicity:
    def test_preference_complete_pair_finds_shallow_decomposition(self, four_cycle):
        bags = soft_candidate_bags(four_cycle, 2)
        constraint = ShallowCyclicityConstraint(four_cycle, depth=0)
        preference = ShallowCyclicityPreference(four_cycle)
        result = constrained_candidate_td(
            four_cycle, bags, constraint=constraint, preference=preference
        )
        assert result is not None
        assert constraint.holds_recursively(result)


class TestPartitionClustering:
    def test_example4_partitioned_decomposition(self):
        hypergraph, partition = example4_query()
        bags = soft_candidate_bags(hypergraph, 2)
        constraint = PartitionClusteringConstraint(hypergraph, partition, k=2)
        result = constrained_candidate_td(hypergraph, bags, constraint=constraint)
        assert result is not None
        assert result.is_valid()
        assert constraint.holds_recursively(result)


class TestTrivialAndTinyHypergraphs:
    def test_vertexless_hypergraph_accepts_trivially(self):
        empty = Hypergraph([])
        solver = ConstrainedCTDSolver(empty, [])
        assert solver.decide()
        decomposition = solver.solve()
        assert decomposition is not None
        assert decomposition.bags() == [frozenset()]
        assert decomposition.is_valid()
        assert reference_constrained_ctd(empty, []) is not None

    def test_single_vertex_hypergraph(self):
        single = Hypergraph({"e0": ["v"]})
        bags = soft_candidate_bags(single, 1)
        decomposition = constrained_candidate_td(single, bags)
        assert decomposition is not None
        assert decomposition.bags() == [frozenset({"v"})]
        assert decomposition.is_valid()

    def test_single_vertex_without_candidate_bags_is_infeasible(self):
        single = Hypergraph({"e0": ["v"]})
        solver = ConstrainedCTDSolver(single, [])
        assert not solver.decide()
        assert solver.solve() is None
        assert solver.optimal_key() is None


class TestWorklistEvents:
    def test_reversed_probe_order_converges_to_the_same_optimum(self, h2):
        """Force the sweep out of topological order so the worklist must fire.

        With the bottom-up order reversed, nearly every initial probe finds
        its sub-blocks unsatisfied; only the newly-satisfied and key-improved
        events of the worklist can complete the fixpoint, so this pins down
        the event propagation rather than the sweep.
        """
        bags = soft_candidate_bags(h2, 2)
        preference = MaxBagSizePreference()
        baseline = ConstrainedCTDSolver(h2, bags, preference=preference)
        expected_key = baseline.optimal_key()
        assert expected_key is not None

        shuffled = ConstrainedCTDSolver(h2, bags, preference=preference)
        order = shuffled.index.topological_order_ids()
        shuffled.index.topological_order_ids = lambda: list(reversed(order))
        assert shuffled.optimal_key() == expected_key
        assert set(shuffled.satisfied_blocks()) == set(baseline.satisfied_blocks())

    def test_reversed_order_with_constraint_and_cost(self, four_cycle):
        bags = soft_candidate_bags(four_cycle, 2)
        constraint = ConnectedCoverConstraint(four_cycle, 2)
        preference = MonotoneCostPreference(
            node_cost=lambda bag: len(bag) ** 2,
            edge_cost=lambda parent, child: len(parent & child) + 1,
        )
        baseline = ConstrainedCTDSolver(
            four_cycle, bags, constraint=constraint, preference=preference
        )
        shuffled = ConstrainedCTDSolver(
            four_cycle, bags, constraint=constraint, preference=preference
        )
        order = shuffled.index.topological_order_ids()
        shuffled.index.topological_order_ids = lambda: list(reversed(order))
        assert shuffled.optimal_key() == baseline.optimal_key()


class TestSolverIntrospection:
    def test_basis_of_and_satisfied_blocks(self, four_cycle):
        bags = soft_candidate_bags(four_cycle, 2)
        solver = ConstrainedCTDSolver(four_cycle, bags)
        assert solver.decide()
        root = solver.index.root_block
        root_basis = solver.basis_of(root)
        assert root_basis in set(solver.index.candidate_bags)
        satisfied = set(solver.satisfied_blocks())
        assert root in satisfied
        # Trivially satisfied blocks report the empty basis.
        trivial = next(b for b in satisfied if not b.component)
        assert solver.basis_of(trivial) == frozenset()

    def test_partial_decomposition_of_root_is_the_solution(self, four_cycle):
        bags = soft_candidate_bags(four_cycle, 2)
        solver = ConstrainedCTDSolver(four_cycle, bags)
        solution = solver.solve()
        partial = solver.partial_decomposition(solver.index.root_block)
        assert solution is not None and partial is not None
        assert solution.canonical_form() == partial.canonical_form()


class TestPreferenceOptimisation:
    def test_cost_preference_prefers_cheaper_decomposition(self, h2):
        bags = soft_candidate_bags(h2, 2)
        # Penalise large bags heavily: the optimum should avoid 6-vertex bags
        # whenever possible while still being a valid CTD.
        preference = CostPreference(
            lambda td: sum(len(bag) ** 2 for bag in td.bags())
        )
        solver = ConstrainedCTDSolver(h2, bags, preference=preference)
        best = solver.solve()
        assert best is not None
        unconstrained = shw_leq(h2, 2)
        assert preference.key(best) <= preference.key(unconstrained)

    def test_max_bag_size_preference(self, c5):
        bags = soft_candidate_bags(c5, 2)
        best = constrained_candidate_td(
            c5, bags, preference=MaxBagSizePreference()
        )
        assert best is not None
        assert max(len(bag) for bag in best.bags()) <= 4
