"""Unit tests for Soft_{H,k} and the iterated Soft^i_{H,k} (Definitions 3 and 6)."""

import pytest

from repro.core.candidate_bags import (
    SoftBagGenerator,
    filter_bags_by_cover,
    iterated_soft_candidate_bags,
    soft_bag,
    soft_candidate_bags,
)
from repro.core.covers import minimum_edge_cover
from repro.hypergraph.library import hypergraph_h2


class TestSoftCandidateBags:
    def test_every_edge_is_a_candidate_bag(self, h2):
        bags = soft_candidate_bags(h2, 1)
        for edge in h2.edges:
            assert edge.vertices in bags

    def test_unions_of_k_edges_are_candidates(self, h2):
        bags = soft_candidate_bags(h2, 2)
        union = h2.edge("e12a").vertices | h2.edge("e78b").vertices
        assert union in bags

    def test_no_empty_bags(self, h2):
        assert frozenset() not in soft_candidate_bags(h2, 2)

    def test_all_bags_have_small_covers(self, h2):
        # Theorem 2: every bag of Soft_{H,k} is covered by at most k edges.
        for bag in soft_candidate_bags(h2, 2):
            cover = minimum_edge_cover(h2, bag, upper_bound=2)
            assert cover is not None and len(cover) <= 2

    def test_example1_bags_are_candidates(self, h2):
        # The four bags of the soft decomposition in Figure 1b.
        bags = soft_candidate_bags(h2, 2)
        assert frozenset({"2", "6", "7", "a", "b"}) in bags
        assert frozenset({"2", "5", "6", "a", "b"}) in bags
        assert frozenset({"2", "3", "4", "5", "a", "b"}) in bags
        assert frozenset({"1", "2", "7", "8", "a", "b"}) in bags

    def test_k_grows_the_candidate_set(self, h2):
        assert soft_candidate_bags(h2, 1) <= soft_candidate_bags(h2, 2)

    def test_invalid_k_rejected(self, h2):
        with pytest.raises(ValueError):
            soft_candidate_bags(h2, 0)


class TestSoftBagWitness:
    def test_example1_witness_for_bag_267ab(self, h2):
        # Example 1: {2,6,7,a,b} = (⋃{e23b, e67a}) ∩ (⋃C) for the single
        # [{e34, e23b}]-component C.
        bag = soft_bag(
            h2,
            lambda1=[h2.edge("e23b"), h2.edge("e67a")],
            lambda2=[h2.edge("e34"), h2.edge("e23b")],
        )
        assert bag == frozenset({"2", "6", "7", "a", "b"})

    def test_example1_witness_for_bag_256ab(self, h2):
        bag = soft_bag(
            h2,
            lambda1=[h2.edge("e12a"), h2.edge("e56b")],
            lambda2=[h2.edge("e18"), h2.edge("e12a")],
        )
        assert bag == frozenset({"2", "5", "6", "a", "b"})

    def test_empty_lambda2_gives_whole_hypergraph_component(self, h2):
        bag = soft_bag(h2, lambda1=[h2.edge("e12a")], lambda2=[])
        assert bag == h2.edge("e12a").vertices


class TestIteratedSoft:
    def test_level_zero_matches_definition_3(self, h2):
        assert iterated_soft_candidate_bags(h2, 2, 0) == soft_candidate_bags(h2, 2)

    def test_monotonicity_lemma3(self, triangle, four_cycle):
        # Lemma 3: E^(i) ⊆ E^(i+1), E^(i) ⊆ Soft^i, Soft^i ⊆ Soft^{i+1}.
        for hypergraph in (triangle, four_cycle):
            generator = SoftBagGenerator(hypergraph, 2)
            for level in range(2):
                subedges = generator.subedges(level)
                next_subedges = generator.subedges(level + 1)
                soft = generator.candidate_bags(level)
                next_soft = generator.candidate_bags(level + 1)
                assert subedges <= next_subedges
                assert subedges <= soft
                assert soft <= next_soft

    def test_subedges_level_zero_are_the_edges(self, triangle):
        generator = SoftBagGenerator(triangle, 2)
        assert generator.subedges(0) == {edge.vertices for edge in triangle.edges}

    def test_fixpoint_reached(self, triangle):
        generator = SoftBagGenerator(triangle, 2)
        fixpoint = generator.fixpoint_candidate_bags(max_level=10)
        assert fixpoint == generator.candidate_bags(5)

    def test_max_subedges_caps_growth(self, h2):
        generator = SoftBagGenerator(h2, 2, max_subedges=20)
        generator.candidate_bags(1)
        assert len(generator.subedges(1)) <= 20 + 1
        assert generator.truncated


class TestBagFilters:
    def test_connected_filter_drops_cartesian_bags(self, four_cycle):
        bags = soft_candidate_bags(four_cycle, 2)
        connected = filter_bags_by_cover(four_cycle, bags, 2, connected=True)
        assert frozenset({"w", "x", "y", "z"}) in bags
        assert frozenset({"w", "x", "y", "z"}) not in connected
        assert connected <= bags

    def test_cover_filter_keeps_coverable_bags(self, h2):
        bags = soft_candidate_bags(h2, 2)
        filtered = filter_bags_by_cover(h2, bags, 2, connected=False)
        assert filtered == bags
