"""Unit tests for edge covers and the ConCov bag-level machinery."""

from repro.core.covers import (
    connected_covers,
    connected_edge_set,
    enumerate_covers,
    greedy_edge_cover,
    has_connected_cover,
    minimum_edge_cover,
)
from repro.hypergraph.hypergraph import Hypergraph


class TestGreedyCover:
    def test_covers_the_bag(self, h2):
        bag = {"1", "2", "3", "4"}
        cover = greedy_edge_cover(h2, bag)
        union = set()
        for edge in cover:
            union.update(edge.vertices)
        assert bag <= union

    def test_uncoverable_bag_returns_none(self, triangle):
        extended = Hypergraph({"R": ["x", "y"]}, vertices=["w"])
        assert greedy_edge_cover(extended, {"w"}) is None

    def test_empty_bag_gets_empty_cover(self, triangle):
        assert greedy_edge_cover(triangle, set()) == []


class TestMinimumCover:
    def test_minimum_cover_is_minimum(self, four_cycle):
        cover = minimum_edge_cover(four_cycle, {"w", "x", "y", "z"})
        assert len(cover) == 2

    def test_upper_bound_respected(self, four_cycle):
        assert minimum_edge_cover(four_cycle, {"w", "x", "y", "z"}, upper_bound=1) is None
        assert minimum_edge_cover(four_cycle, {"w", "x"}, upper_bound=1) is not None

    def test_single_vertex_bag(self, triangle):
        cover = minimum_edge_cover(triangle, {"x"})
        assert len(cover) == 1

    def test_empty_bag(self, triangle):
        assert minimum_edge_cover(triangle, set()) == []

    def test_uncoverable_returns_none(self):
        hypergraph = Hypergraph({"R": ["x", "y"]}, vertices=["w"])
        assert minimum_edge_cover(hypergraph, {"x", "w"}) is None

    def test_h2_bag_cover_number(self, h2):
        # The bag {2,6,7,a,b} from Figure 1b has a 2-edge cover.
        cover = minimum_edge_cover(h2, {"2", "6", "7", "a", "b"})
        assert len(cover) == 2


class TestEnumerateCovers:
    def test_all_minimal_covers_found(self, four_cycle):
        covers = list(enumerate_covers(four_cycle, {"w", "x", "y", "z"}, 2))
        names = {frozenset(e.name for e in cover) for cover in covers}
        assert frozenset({"R", "T"}) in names
        assert frozenset({"S", "U"}) in names

    def test_size_bound_respected(self, four_cycle):
        covers = list(enumerate_covers(four_cycle, {"w", "x", "y", "z"}, 1))
        assert covers == []

    def test_no_duplicates(self, h2):
        covers = list(enumerate_covers(h2, {"a", "b"}, 2))
        names = [frozenset(e.name for e in cover) for cover in covers]
        assert len(names) == len(set(names))

    def test_empty_bag_yields_empty_cover(self, triangle):
        assert list(enumerate_covers(triangle, set(), 2)) == [()]


class TestConnectedness:
    def test_connected_edge_set(self, four_cycle):
        edges = four_cycle.edges
        r, s, t, u = edges
        assert connected_edge_set([r, s])
        assert not connected_edge_set([r, t])
        assert connected_edge_set([])
        assert connected_edge_set([r])
        assert connected_edge_set([r, s, t, u])

    def test_four_cycle_full_bag_has_no_connected_2_cover(self, four_cycle):
        # The only 2-covers of {w,x,y,z} are the two diagonal (Cartesian) pairs.
        assert not has_connected_cover(four_cycle, {"w", "x", "y", "z"}, 2)
        assert has_connected_cover(four_cycle, {"w", "x", "y", "z"}, 3)

    def test_connected_cover_for_adjacent_edges(self, four_cycle):
        assert has_connected_cover(four_cycle, {"w", "x", "y"}, 2)

    def test_connected_covers_listing(self, four_cycle):
        covers = connected_covers(four_cycle, {"w", "x", "y"}, 2)
        assert covers
        assert all(connected_edge_set(cover) for cover in covers)

    def test_empty_bag_is_trivially_connected(self, four_cycle):
        assert has_connected_cover(four_cycle, set(), 1)

    def test_c5_needs_width_three_connected_cover(self, c5):
        # Section 6: ConCov-hw(C5) = 3 even though hw(C5) = 2.
        full_bag = set(c5.vertices) - {"v3"}
        assert not has_connected_cover(c5, full_bag, 2)
        assert has_connected_cover(c5, full_bag, 3)
