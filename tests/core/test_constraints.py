"""Unit tests for the subtree constraints of Section 6."""

from repro.core.constraints import (
    AndConstraint,
    ConnectedCoverConstraint,
    NoConstraint,
    PartitionClusteringConstraint,
    ShallowCyclicityConstraint,
)
from repro.decompositions.td import TreeDecomposition
from repro.hypergraph.library import example4_query, four_cycle_query


def cartesian_decomposition(four_cycle):
    """The width-2 HD of the 4-cycle that forces a Cartesian product (D1)."""
    return TreeDecomposition.from_bags(
        four_cycle, [{"w", "x", "y", "z"}, {"x", "y"}], [None, 0]
    )


def chain_decomposition(four_cycle):
    """A decomposition whose bags all have connected covers (needs width 3)."""
    return TreeDecomposition.from_bags(
        four_cycle, [{"w", "x", "y"}, {"w", "y", "z"}], [None, 0]
    )


class TestNoConstraintAndConjunction:
    def test_no_constraint_accepts_everything(self, four_cycle):
        constraint = NoConstraint()
        assert constraint.holds_recursively(cartesian_decomposition(four_cycle))

    def test_and_constraint(self, four_cycle):
        concov = ConnectedCoverConstraint(four_cycle, 2)
        conjunction = NoConstraint() & concov
        assert isinstance(conjunction, AndConstraint)
        assert not conjunction.holds_recursively(cartesian_decomposition(four_cycle))
        assert conjunction.filter_bags([frozenset({"w", "x"})]) == {frozenset({"w", "x"})}


class TestConnectedCover:
    def test_example3_cartesian_decomposition_rejected(self, four_cycle):
        constraint = ConnectedCoverConstraint(four_cycle, 2)
        assert not constraint.holds_recursively(cartesian_decomposition(four_cycle))

    def test_connected_decomposition_accepted_with_k3(self, four_cycle):
        constraint = ConnectedCoverConstraint(four_cycle, 3)
        assert constraint.holds_recursively(chain_decomposition(four_cycle))

    def test_filter_bags(self, four_cycle):
        constraint = ConnectedCoverConstraint(four_cycle, 2)
        bags = {frozenset({"w", "x", "y", "z"}), frozenset({"w", "x", "y"})}
        assert constraint.filter_bags(bags) == {frozenset({"w", "x", "y"})}

    def test_empty_bag_is_fine(self, four_cycle):
        constraint = ConnectedCoverConstraint(four_cycle, 2)
        td = TreeDecomposition.from_bags(four_cycle, [set(), {"w", "x", "y", "z"}], [None, 0])
        td_simple = TreeDecomposition.from_bags(four_cycle, [set()], [None])
        assert constraint.holds(td_simple)
        assert not constraint.holds(td)


class TestShallowCyclicity:
    def test_cyclicity_depth_zero_for_single_edge_bags(self, four_cycle):
        constraint = ShallowCyclicityConstraint(four_cycle, depth=0)
        td = TreeDecomposition.from_bags(
            four_cycle, [{"w", "x"}, {"x", "y"}, {"y", "z"}, {"z", "w"}], [None, 0, 1, 2]
        )
        # Not a valid TD of the 4-cycle, but cyclicity depth is still defined.
        assert constraint.cyclicity_depth(td) == 0
        assert constraint.holds(td)

    def test_cyclic_core_at_root_has_depth_zero(self, four_cycle):
        constraint = ShallowCyclicityConstraint(four_cycle, depth=0)
        td = cartesian_decomposition(four_cycle)
        assert constraint.cyclicity_depth(td) == 0
        assert constraint.holds(td)

    def test_deep_cyclic_bag_violates_depth_zero(self, four_cycle):
        constraint = ShallowCyclicityConstraint(four_cycle, depth=0)
        td = TreeDecomposition.from_bags(
            four_cycle, [{"x", "y"}, {"w", "x", "y", "z"}], [None, 0]
        )
        assert constraint.cyclicity_depth(td) == 1
        assert not constraint.holds(td)
        assert ShallowCyclicityConstraint(four_cycle, depth=1).holds(td)


class TestPartitionClustering:
    def test_example4_clustered_decomposition_accepted(self):
        hypergraph, partition = example4_query()
        constraint = PartitionClusteringConstraint(hypergraph, partition, k=2)
        # Figure 4c: V | R⋈U | T⋈S | W as a chain — each partition's nodes
        # form a connected subtree.
        td = TreeDecomposition.from_bags(
            hypergraph,
            [{"v1", "v5"}, {"v1", "v2", "v3"}, {"v2", "v3", "v4"}, {"v4", "v6"}],
            [None, 0, 1, 2],
        )
        assert td.is_valid()
        assert constraint.holds_recursively(td)

    def test_alternating_partitions_rejected(self):
        hypergraph, partition = example4_query()
        constraint = PartitionClusteringConstraint(hypergraph, partition, k=2)
        # Interleaving the partitions along a chain (p1, p2, p1, p2) cannot
        # cluster them into disjoint subtrees.
        td = TreeDecomposition.from_bags(
            hypergraph,
            [{"v1", "v5"}, {"v4", "v6"}, {"v1", "v2", "v3"}, {"v2", "v3", "v4"}],
            [None, 0, 1, 2],
        )
        assert not constraint.holds(td)

    def test_uncoverable_bag_rejected(self):
        hypergraph, partition = example4_query()
        constraint = PartitionClusteringConstraint(hypergraph, partition, k=1)
        td = TreeDecomposition.from_bags(
            hypergraph,
            [{"v1", "v2", "v3", "v4"}],
            [None],
        )
        assert not constraint.holds(td)

    def test_filter_bags_drops_bags_without_single_partition_cover(self):
        hypergraph, partition = example4_query()
        constraint = PartitionClusteringConstraint(hypergraph, partition, k=1)
        bags = {frozenset({"v1", "v2"}), frozenset({"v1", "v2", "v3", "v4"})}
        assert constraint.filter_bags(bags) == {frozenset({"v1", "v2"})}
