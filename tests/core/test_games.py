"""Unit tests for the Robber & Marshals and Institutional R&M games (Appendix A.1)."""

import pytest

from repro.baselines.detkdecomp import hypertree_width
from repro.core.games import (
    irmg_have_winning_strategy,
    irmg_width,
    marshals_have_winning_strategy,
    marshals_width,
)
from repro.core.soft import soft_hypertree_width
from repro.hypergraph.library import cycle_hypergraph


class TestMarshalsGame:
    def test_single_edge_needs_one_marshal(self):
        from repro.hypergraph.hypergraph import Hypergraph

        hypergraph = Hypergraph({"R": ["x", "y", "z"]})
        assert marshals_have_winning_strategy(hypergraph, 1)
        assert marshals_width(hypergraph) == 1

    def test_triangle_needs_two_marshals(self, triangle):
        assert not marshals_have_winning_strategy(triangle, 1)
        assert marshals_have_winning_strategy(triangle, 2)
        assert marshals_width(triangle) == 2

    def test_monotone_width_at_least_plain_width(self, triangle, four_cycle):
        for hypergraph in (triangle, four_cycle):
            assert marshals_width(hypergraph, monotone=True) >= marshals_width(hypergraph)

    def test_monotone_marshal_width_equals_hw_on_small_examples(self, triangle, four_cycle):
        # Gottlob, Leone, Scarcello: mon-mw(H) = hw(H).
        for hypergraph in (triangle, four_cycle, cycle_hypergraph(5)):
            assert marshals_width(hypergraph, monotone=True) == hypertree_width(hypergraph)

    def test_unreachable_width_raises(self, triangle):
        with pytest.raises(ValueError):
            marshals_width(triangle, max_k=0)


class TestInstitutionalGame:
    def test_irmg_is_at_most_marshal_width(self, triangle, four_cycle):
        for hypergraph in (triangle, four_cycle):
            assert irmg_width(hypergraph) <= marshals_width(hypergraph)

    def test_monotone_irmw_bounded_by_shw(self, triangle, four_cycle):
        # Theorem 12: mon-irmw(H) <= shw(H).
        for hypergraph in (triangle, four_cycle, cycle_hypergraph(5)):
            shw, _ = soft_hypertree_width(hypergraph)
            assert irmg_width(hypergraph, monotone=True) <= shw

    def test_irmg_on_triangle(self, triangle):
        assert not irmg_have_winning_strategy(triangle, 1)
        assert irmg_have_winning_strategy(triangle, 2)


@pytest.mark.slow
class TestH2Games:
    def test_h2_monotone_irmg_two_marshals_win(self, h2):
        # Appendix A.1 (Figure 7): two marshals have a monotone winning
        # strategy in the IRMG on H2, matching shw(H2) = 2.
        assert irmg_have_winning_strategy(h2, 2, monotone=True)

    def test_h2_monotone_plain_game_needs_three(self, h2):
        assert not marshals_have_winning_strategy(h2, 2, monotone=True)
        assert marshals_have_winning_strategy(h2, 3, monotone=True)
