"""Unit tests for soft hypertree width (Definitions 4 and 6, Theorems 1 and 2)."""

import pytest

from repro.baselines.detkdecomp import hypertree_width
from repro.core.soft import (
    certify_soft_decomposition,
    shw_i_leq,
    shw_leq,
    soft_decomposition,
    soft_decomposition_to_ghd,
    soft_hypertree_width,
)
from repro.hypergraph.library import cycle_hypergraph
from repro.hypergraph.generators import random_acyclic_hypergraph


class TestShwDecision:
    def test_acyclic_hypergraphs_have_shw_1(self):
        for seed in range(3):
            hypergraph = random_acyclic_hypergraph(5, seed=seed)
            assert shw_leq(hypergraph, 1) is not None

    def test_triangle_shw_2(self, triangle):
        assert shw_leq(triangle, 1) is None
        td = shw_leq(triangle, 2)
        assert td is not None and td.is_valid()

    def test_h2_shw_2_strictly_below_hw_3(self, h2):
        # Example 1: ghw(H2) = shw(H2) = 2 < hw(H2) = 3.
        assert shw_leq(h2, 1) is None
        witness = shw_leq(h2, 2)
        assert witness is not None
        assert certify_soft_decomposition(h2, witness, 2)
        assert hypertree_width(h2) == 3

    def test_invalid_k_rejected(self, triangle):
        with pytest.raises(ValueError):
            shw_leq(triangle, 0)


class TestShwSearch:
    def test_soft_hypertree_width_h2(self, h2):
        width, decomposition = soft_hypertree_width(h2)
        assert width == 2
        assert decomposition.is_valid()

    def test_soft_hypertree_width_cycles(self):
        for length in (4, 5, 6, 7):
            width, _ = soft_hypertree_width(cycle_hypergraph(length))
            assert width == 2

    def test_width_never_exceeds_hw(self, triangle, four_cycle, h2):
        for hypergraph in (triangle, four_cycle, h2):
            shw, _ = soft_hypertree_width(hypergraph)
            assert shw <= hypertree_width(hypergraph)

    def test_max_k_exhausted_raises(self, triangle):
        with pytest.raises(ValueError):
            soft_hypertree_width(triangle, max_k=1)

    def test_soft_decomposition_alias(self, triangle):
        assert soft_decomposition(triangle, 2) is not None
        assert soft_decomposition(triangle, 1) is None


class TestIteratedShw:
    def test_shw_i_never_increases_with_i(self, h2, four_cycle):
        for hypergraph in (h2, four_cycle):
            for k in (1, 2):
                if shw_i_leq(hypergraph, k, 0) is not None:
                    assert shw_i_leq(hypergraph, k, 1) is not None

    def test_shw_i_with_subedge_cap_still_sound(self, h2):
        decomposition = shw_i_leq(h2, 2, 1, max_subedges=50)
        if decomposition is not None:
            assert decomposition.is_valid()


class TestCertification:
    def test_certify_accepts_solver_output(self, h2):
        decomposition = shw_leq(h2, 2)
        assert certify_soft_decomposition(h2, decomposition, 2)

    def test_certify_rejects_foreign_bags(self, h2, triangle):
        decomposition = shw_leq(triangle, 2)
        assert not certify_soft_decomposition(h2, decomposition, 2)

    def test_ghd_conversion_respects_width(self, h2):
        decomposition = shw_leq(h2, 2)
        ghd = soft_decomposition_to_ghd(decomposition)
        assert ghd.is_valid()
        assert ghd.ghd_width() <= 2
