"""Unit tests for the ranked CTD enumerator."""

from repro.core.candidate_bags import soft_candidate_bags
from repro.core.constraints import ConnectedCoverConstraint
from repro.core.enumerate import CTDEnumerator, enumerate_ctds, fragment_to_decomposition
from repro.core.preferences import MaxBagSizePreference, NodeCountPreference


class TestEnumerateBasics:
    def test_returns_valid_distinct_decompositions(self, h2):
        bags = soft_candidate_bags(h2, 2)
        decompositions = enumerate_ctds(h2, bags, limit=5)
        assert decompositions
        forms = set()
        for decomposition in decompositions:
            assert decomposition.is_valid()
            assert decomposition.uses_bags_from(bags)
            forms.add(decomposition.canonical_form())
        assert len(forms) == len(decompositions)

    def test_empty_when_no_ctd_exists(self, triangle):
        bags = soft_candidate_bags(triangle, 1)
        assert enumerate_ctds(triangle, bags, limit=5) == []

    def test_limit_respected(self, h2):
        bags = soft_candidate_bags(h2, 2)
        assert len(enumerate_ctds(h2, bags, limit=3)) <= 3

    def test_single_candidate_bag(self, triangle):
        decompositions = enumerate_ctds(
            triangle, [frozenset(triangle.vertices)], limit=5
        )
        assert len(decompositions) == 1
        assert decompositions[0].tree.num_nodes() == 1


class TestEnumerateRanking:
    def test_preference_orders_results(self, h2):
        bags = soft_candidate_bags(h2, 2)
        preference = NodeCountPreference()
        decompositions = enumerate_ctds(h2, bags, preference=preference, limit=10)
        keys = [preference.key(d) for d in decompositions]
        assert keys == sorted(keys)

    def test_max_bag_size_ranking(self, c5):
        bags = soft_candidate_bags(c5, 2)
        preference = MaxBagSizePreference()
        decompositions = enumerate_ctds(c5, bags, preference=preference, limit=10)
        assert decompositions
        keys = [preference.key(d) for d in decompositions]
        assert keys == sorted(keys)


class TestEnumerateWithConstraints:
    def test_concov_constraint_respected(self, four_cycle):
        bags = soft_candidate_bags(four_cycle, 2)
        constraint = ConnectedCoverConstraint(four_cycle, 2)
        decompositions = enumerate_ctds(four_cycle, bags, constraint=constraint, limit=5)
        # Example 3: Cartesian-product bags must never appear; the connected
        # width-2 decompositions (like D2) remain.
        assert decompositions
        for decomposition in decompositions:
            assert constraint.holds_recursively(decomposition)
            assert frozenset({"w", "x", "y", "z"}) not in decomposition.bags()

    def test_concov_width_2_impossible_for_c5(self, c5):
        bags = soft_candidate_bags(c5, 2)
        constraint = ConnectedCoverConstraint(c5, 2)
        assert enumerate_ctds(c5, bags, constraint=constraint, limit=5) == []

    def test_concov_allows_wider_bags(self, c5):
        bags = soft_candidate_bags(c5, 3)
        constraint = ConnectedCoverConstraint(c5, 3)
        decompositions = enumerate_ctds(c5, bags, constraint=constraint, limit=5)
        assert decompositions
        for decomposition in decompositions:
            assert constraint.holds_recursively(decomposition)


class TestFragments:
    def test_fragment_to_decomposition_roundtrip(self, triangle):
        fragment = (frozenset({"x", "y", "z"}), ())
        decomposition = fragment_to_decomposition(triangle, fragment)
        assert decomposition.tree.num_nodes() == 1
        with_head = fragment_to_decomposition(
            triangle, fragment, head=frozenset({"x"})
        )
        assert with_head.tree.num_nodes() == 2
        assert with_head.bag(with_head.tree.root) == frozenset({"x"})

    def test_enumerator_beam_limits_options(self, h2):
        bags = soft_candidate_bags(h2, 2)
        enumerator = CTDEnumerator(h2, bags, beam=2)
        decompositions = enumerator.enumerate(limit=2)
        assert 0 < len(decompositions) <= 2
