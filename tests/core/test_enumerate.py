"""Unit tests for the exact lazy any-k CTD enumerator."""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.core.candidate_bags import soft_candidate_bags
from repro.core.constraints import ConnectedCoverConstraint
from repro.core.enumerate import CTDEnumerator, enumerate_ctds, fragment_to_decomposition
from repro.core.preferences import (
    MaxBagSizePreference,
    MonotoneCostPreference,
    NodeCountPreference,
)
from repro.core.reference import reference_enumerate_ctds
from repro.hypergraph.hypergraph import Hypergraph


class TestEnumerateBasics:
    def test_returns_valid_distinct_decompositions(self, h2):
        bags = soft_candidate_bags(h2, 2)
        decompositions = enumerate_ctds(h2, bags, limit=5)
        assert decompositions
        forms = set()
        for decomposition in decompositions:
            assert decomposition.is_valid()
            assert decomposition.uses_bags_from(bags)
            forms.add(decomposition.canonical_form())
        assert len(forms) == len(decompositions)

    def test_empty_when_no_ctd_exists(self, triangle):
        bags = soft_candidate_bags(triangle, 1)
        assert enumerate_ctds(triangle, bags, limit=5) == []

    def test_limit_respected(self, h2):
        bags = soft_candidate_bags(h2, 2)
        assert len(enumerate_ctds(h2, bags, limit=3)) <= 3
        assert enumerate_ctds(h2, bags, limit=0) == []

    def test_single_candidate_bag(self, triangle):
        decompositions = enumerate_ctds(
            triangle, [frozenset(triangle.vertices)], limit=5
        )
        assert len(decompositions) == 1
        assert decompositions[0].tree.num_nodes() == 1

    def test_prefix_stability(self, four_cycle):
        # Any-k: asking for more results never changes the ones already seen.
        bags = soft_candidate_bags(four_cycle, 2)
        preference = NodeCountPreference()
        ten = enumerate_ctds(four_cycle, bags, preference=preference, limit=10)
        three = enumerate_ctds(four_cycle, bags, preference=preference, limit=3)
        assert [d.canonical_form() for d in three] == [
            d.canonical_form() for d in ten[:3]
        ]


class TestEnumerateRanking:
    def test_preference_orders_results(self, h2):
        bags = soft_candidate_bags(h2, 2)
        preference = NodeCountPreference()
        decompositions = enumerate_ctds(h2, bags, preference=preference, limit=10)
        keys = [preference.key(d) for d in decompositions]
        assert keys == sorted(keys)

    def test_max_bag_size_ranking(self, c5):
        bags = soft_candidate_bags(c5, 2)
        preference = MaxBagSizePreference()
        decompositions = enumerate_ctds(c5, bags, preference=preference, limit=10)
        assert decompositions
        keys = [preference.key(d) for d in decompositions]
        assert keys == sorted(keys)

    def test_exact_top_k_matches_reference(self, four_cycle):
        # The lazy path (Eq. 6-shaped cost) against exhaustive generation +
        # sort; integer costs so the keys compare exactly.
        bags = soft_candidate_bags(four_cycle, 2)

        def make():
            return MonotoneCostPreference(
                node_cost=lambda bag: len(bag) ** 2,
                edge_cost=lambda parent, child: len(parent & child) + 1,
            )

        got = enumerate_ctds(four_cycle, bags, preference=make(), limit=10)
        want = reference_enumerate_ctds(four_cycle, bags, preference=make(), limit=10)
        assert [d.canonical_form() for d in got] == [
            d.canonical_form() for d in want
        ]


class TestEnumerateWithConstraints:
    def test_concov_constraint_respected(self, four_cycle):
        bags = soft_candidate_bags(four_cycle, 2)
        constraint = ConnectedCoverConstraint(four_cycle, 2)
        decompositions = enumerate_ctds(four_cycle, bags, constraint=constraint, limit=5)
        # Example 3: Cartesian-product bags must never appear; the connected
        # width-2 decompositions (like D2) remain.
        assert decompositions
        for decomposition in decompositions:
            assert constraint.holds_recursively(decomposition)
            assert frozenset({"w", "x", "y", "z"}) not in decomposition.bags()

    def test_concov_width_2_impossible_for_c5(self, c5):
        bags = soft_candidate_bags(c5, 2)
        constraint = ConnectedCoverConstraint(c5, 2)
        assert enumerate_ctds(c5, bags, constraint=constraint, limit=5) == []

    def test_concov_allows_wider_bags(self, c5):
        bags = soft_candidate_bags(c5, 3)
        constraint = ConnectedCoverConstraint(c5, 3)
        decompositions = enumerate_ctds(c5, bags, constraint=constraint, limit=5)
        assert decompositions
        for decomposition in decompositions:
            assert constraint.holds_recursively(decomposition)


class TestTrivialAndTinyHypergraphs:
    def test_vertexless_hypergraph_yields_the_trivial_decomposition(self):
        # The solvers accept the vertex-less hypergraph with the
        # single-empty-bag CTD; the enumerator must yield it too.
        empty = Hypergraph([])
        decompositions = enumerate_ctds(empty, [])
        assert len(decompositions) == 1
        assert decompositions[0].bags() == [frozenset()]
        assert decompositions[0].is_valid()
        reference = reference_enumerate_ctds(empty, [])
        assert [d.canonical_form() for d in decompositions] == [
            d.canonical_form() for d in reference
        ]

    def test_single_vertex_hypergraph(self):
        single = Hypergraph({"e0": ["v"]})
        bags = soft_candidate_bags(single, 1)
        decompositions = enumerate_ctds(single, bags)
        assert len(decompositions) == 1
        assert decompositions[0].bags() == [frozenset({"v"})]
        assert decompositions[0].is_valid()

    def test_single_vertex_without_candidate_bags_is_infeasible(self):
        single = Hypergraph({"e0": ["v"]})
        assert enumerate_ctds(single, []) == []


class TestDeterministicTieBreak:
    def test_repeated_enumerations_agree(self, h2):
        bags = soft_candidate_bags(h2, 2)
        first = enumerate_ctds(h2, bags, limit=8)
        second = enumerate_ctds(h2, bags, limit=8)
        assert [d.canonical_form() for d in first] == [
            d.canonical_form() for d in second
        ]

    def test_order_is_stable_across_hash_seeds(self):
        # The tie-break is canonical sorted-vertex tuples, never frozenset
        # ``repr``: re-running the enumeration in subprocesses with different
        # PYTHONHASHSEED values (different frozenset iteration orders) must
        # produce the identical ranked sequence.
        script = textwrap.dedent(
            """
            from repro.core.candidate_bags import soft_candidate_bags
            from repro.core.enumerate import enumerate_ctds
            from repro.hypergraph.library import four_cycle_query

            hypergraph = four_cycle_query()
            bags = soft_candidate_bags(hypergraph, 2)
            for decomposition in enumerate_ctds(hypergraph, bags, limit=10):
                print(decomposition.canonical_form())
            """
        )
        outputs = []
        for hash_seed in ("0", "1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
            env["PYTHONPATH"] = os.path.abspath(src)
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0].strip()
        assert outputs[0] == outputs[1] == outputs[2]


class TestRemovedParameters:
    """The PR 4 beam-era no-ops are gone, not just deprecated."""

    def test_beam_and_caps_are_rejected(self, h2):
        bags = soft_candidate_bags(h2, 2)
        with pytest.raises(TypeError):
            enumerate_ctds(h2, bags, limit=5, beam=2)
        with pytest.raises(TypeError):
            CTDEnumerator(h2, bags, combinations_per_basis=1)

    def test_no_deprecation_warnings(self, h2, recwarn):
        bags = soft_candidate_bags(h2, 2)
        enumerate_ctds(h2, bags, limit=2)
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]


class TestFragments:
    def test_fragment_to_decomposition_roundtrip(self, triangle):
        fragment = (frozenset({"x", "y", "z"}), ())
        decomposition = fragment_to_decomposition(triangle, fragment)
        assert decomposition.tree.num_nodes() == 1
        with_head = fragment_to_decomposition(
            triangle, fragment, head=frozenset({"x"})
        )
        assert with_head.tree.num_nodes() == 2
        assert with_head.bag(with_head.tree.root) == frozenset({"x"})
