"""Unit tests for blocks, bases and Algorithm 1 (CandidateTD)."""

from repro.core.blocks import Block, BlockIndex
from repro.core.candidate_bags import soft_candidate_bags
from repro.core.ctd import CandidateTDSolver, candidate_td
from repro.hypergraph.hypergraph import Hypergraph


class TestBlocks:
    def test_blocks_headed_by_candidate(self, four_cycle):
        index = BlockIndex(four_cycle, [frozenset({"w", "x"})])
        blocks = index.blocks_headed_by(frozenset({"w", "x"}))
        components = {block.component for block in blocks if block.component}
        assert components == {frozenset({"y", "z"})}
        assert Block(frozenset({"w", "x"}), frozenset()) in blocks

    def test_root_block_registered(self, triangle):
        index = BlockIndex(triangle, [frozenset({"x", "y"})])
        assert index.root_block.head == frozenset()
        assert index.root_block.component == triangle.vertices

    def test_block_order(self):
        small = Block(frozenset({"a"}), frozenset({"b"}))
        large = Block(frozenset(), frozenset({"a", "b", "c"}))
        assert small.leq(large)
        assert not large.leq(small)
        assert small.leq(small)

    def test_topological_order_respects_dependencies(self, four_cycle):
        bags = soft_candidate_bags(four_cycle, 2)
        index = BlockIndex(four_cycle, bags)
        order = index.topological_order()
        positions = {block: i for i, block in enumerate(order)}
        for block in order:
            for head in index.candidate_bags:
                for sub in index.sub_blocks(head, block):
                    if sub != block:
                        assert positions[sub] <= positions[block]

    def test_is_basis_rejects_head_itself(self, triangle):
        bag = frozenset({"x", "y", "z"})
        index = BlockIndex(triangle, [bag])
        block = Block(bag, frozenset())
        assert not index.is_basis(bag, block, {})

    def test_candidate_probes_match_the_static_basis_test(self, four_cycle):
        bags = soft_candidate_bags(four_cycle, 2)
        index = BlockIndex(four_cycle, bags)
        component_masks = index.mask_arrays()[1]
        for block_id in range(index.block_count()):
            if not component_masks[block_id]:
                continue
            probes = dict(index.candidate_probes(block_id))
            for cand_id, candidate_mask in enumerate(index.candidate_masks):
                subs = index.basis_sub_ids(candidate_mask, block_id)
                if subs is None:
                    assert cand_id not in probes
                else:
                    live = tuple(s for s in subs if component_masks[s])
                    assert probes[cand_id] == live


class TestCandidateTDSolver:
    def test_single_full_bag_always_works(self, triangle):
        td = candidate_td(triangle, [frozenset(triangle.vertices)])
        assert td is not None
        assert td.is_valid()
        assert td.tree.num_nodes() == 1

    def test_insufficient_bags_rejected(self, triangle):
        assert candidate_td(triangle, [frozenset({"x", "y"})]) is None

    def test_path_decomposition_found(self):
        hypergraph = Hypergraph(
            {"e0": ["v0", "v1"], "e1": ["v1", "v2"], "e2": ["v2", "v3"]}
        )
        bags = [frozenset({"v0", "v1"}), frozenset({"v1", "v2"}), frozenset({"v2", "v3"})]
        td = candidate_td(hypergraph, bags)
        assert td is not None
        assert td.is_valid()
        assert td.uses_bags_from(bags)
        assert td.is_component_normal_form()

    def test_h2_soft_bags_admit_width2_ctd(self, h2):
        bags = soft_candidate_bags(h2, 2)
        td = candidate_td(h2, bags)
        assert td is not None
        assert td.is_valid()
        assert td.uses_bags_from(bags)

    def test_decide_matches_solve(self, h2):
        bags = soft_candidate_bags(h2, 1)
        solver = CandidateTDSolver(h2, bags)
        assert solver.decide() == (solver.solve() is not None)

    def test_disconnected_hypergraph_supported(self):
        hypergraph = Hypergraph({"R": ["a", "b"], "S": ["c", "d"]})
        td = candidate_td(
            hypergraph, [frozenset({"a", "b"}), frozenset({"c", "d"})]
        )
        assert td is not None
        assert td.is_valid()

    def test_satisfied_blocks_accessible(self, triangle):
        bags = soft_candidate_bags(triangle, 2)
        solver = CandidateTDSolver(triangle, bags)
        solver.solve()
        satisfied = solver.satisfied_blocks()
        assert solver.index.root_block in satisfied

    def test_candidate_bags_not_in_decomposition_are_allowed(self, triangle):
        # Extra useless candidate bags must not break the solver.
        bags = set(soft_candidate_bags(triangle, 2))
        bags.add(frozenset({"x"}))
        td = candidate_td(triangle, bags)
        assert td is not None and td.is_valid()

    def test_resulting_ctd_is_compnf(self, four_cycle):
        bags = soft_candidate_bags(four_cycle, 2)
        td = candidate_td(four_cycle, bags)
        assert td is not None
        assert td.is_component_normal_form()

    def test_vertexless_hypergraph_accepts_trivially(self):
        # The root block of the vertex-less hypergraph is (∅, ∅): trivially
        # satisfied by the empty basis, witnessed by one empty bag.
        empty = Hypergraph([])
        solver = CandidateTDSolver(empty, [])
        assert solver.decide()
        td = solver.solve()
        assert td is not None
        assert td.bags() == [frozenset()]
        assert td.is_valid()
        from repro.core.reference import reference_candidate_td_decide

        assert reference_candidate_td_decide(empty, [])

    def test_single_vertex_hypergraph(self):
        single = Hypergraph({"e0": ["v"]})
        bags = soft_candidate_bags(single, 1)
        td = candidate_td(single, bags)
        assert td is not None
        assert td.bags() == [frozenset({"v"})]
        assert td.is_valid()
        assert candidate_td(single, []) is None
