"""Unit suite for the persistent decomposition cache (`repro.core.cache`).

The solve-level trust model (hits re-certified, poison re-solved) lives in
``tests/core/test_solve.py``; this file pins down the storage layer itself:
keying, atomic writes, version/key validation, LRU eviction, quarantine,
maintenance listings and the ``resolve_cache`` entry-point policy.
"""

import json
import os
import time

import pytest

from repro.core.cache import (
    CACHE_ENV_VAR,
    CACHE_MAX_BYTES_ENV_VAR,
    CACHE_OFF_ENV_VAR,
    CACHE_VERSION,
    DEFAULT_MAX_BYTES,
    DecompositionCache,
    default_cache_dir,
    kind_hash,
    resolve_cache,
)

RECORD = {"width": 2, "decompositions": [{"bags": [[0, 1, 2]], "parents": [None]}]}


def cache_at(tmp_path, **kwargs):
    return DecompositionCache(str(tmp_path / "cache"), **kwargs)


class TestRoundTrip:
    def test_put_then_get(self, tmp_path):
        cache = cache_at(tmp_path)
        path = cache.put("f" * 64, "kind-a", RECORD)
        assert os.path.exists(path)
        record = cache.get("f" * 64, "kind-a")
        assert record["width"] == 2
        assert record["version"] == CACHE_VERSION
        assert cache.stats.as_dict() == {
            "hits": 1,
            "misses": 0,
            "stores": 1,
            "evictions": 0,
            "quarantined": 0,
            "rejected": 0,
        }

    def test_kinds_are_distinct_keys(self, tmp_path):
        cache = cache_at(tmp_path)
        cache.put("f" * 64, "kind-a", RECORD)
        assert cache.get("f" * 64, "kind-b") is None
        assert cache.stats.misses == 1

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = cache_at(tmp_path)
        assert cache.get("0" * 64, "kind") is None
        assert cache.stats.misses == 1

    def test_no_stray_temp_files_after_put(self, tmp_path):
        cache = cache_at(tmp_path)
        cache.put("f" * 64, "kind", RECORD)
        assert not [
            name for name in os.listdir(cache.directory) if ".tmp" in name
        ]


class TestValidation:
    def entry_path(self, cache):
        return cache.entry_path("f" * 64, "kind")

    def test_wrong_version_is_quarantined(self, tmp_path):
        cache = cache_at(tmp_path)
        cache.put("f" * 64, "kind", RECORD)
        path = self.entry_path(cache)
        record = json.load(open(path))
        record["version"] = CACHE_VERSION + 1
        json.dump(record, open(path, "w"))
        assert cache.get("f" * 64, "kind") is None
        assert cache.stats.quarantined == 1
        assert cache.quarantined() == [path + ".corrupt"]

    def test_key_mismatch_is_quarantined(self, tmp_path):
        # A foreign file copied onto this key must not answer for it.
        cache = cache_at(tmp_path)
        cache.put("a" * 64, "kind", RECORD)
        foreign = cache.entry_path("a" * 64, "kind")
        os.rename(foreign, self.entry_path(cache))
        assert cache.get("f" * 64, "kind") is None
        assert cache.stats.quarantined == 1

    def test_unreadable_json_is_quarantined(self, tmp_path):
        cache = cache_at(tmp_path)
        cache.put("f" * 64, "kind", RECORD)
        with open(self.entry_path(cache), "w") as handle:
            handle.write("{ truncated")
        assert cache.get("f" * 64, "kind") is None
        assert cache.stats.quarantined == 1

    def test_reject_quarantines_and_counts(self, tmp_path):
        cache = cache_at(tmp_path)
        cache.put("f" * 64, "kind", RECORD)
        cache.reject("f" * 64, "kind", "failed certification")
        assert cache.stats.rejected == 1 and cache.stats.quarantined == 1
        assert cache.get("f" * 64, "kind") is None


class TestEviction:
    def test_lru_eviction_keeps_recently_used(self, tmp_path):
        cache = cache_at(tmp_path, max_bytes=1)  # every store overflows
        cache.put("a" * 64, "kind", RECORD)
        path_b = cache.put("b" * 64, "kind", RECORD)
        # The just-written entry is exempt from its own eviction pass.
        assert os.path.exists(path_b)
        assert cache.get("a" * 64, "kind") is None
        assert cache.stats.evictions == 1

    def test_touch_on_read_protects_hot_entries(self, tmp_path):
        cache = cache_at(tmp_path, max_bytes=DEFAULT_MAX_BYTES)
        path_a = cache.put("a" * 64, "kind", RECORD)
        path_b = cache.put("b" * 64, "kind", RECORD)
        old = time.time() - 3600
        os.utime(path_a, (old, old))
        os.utime(path_b, (old + 1, old + 1))
        cache.get("a" * 64, "kind")  # touches a: now newer than b
        cache.max_bytes = os.path.getsize(path_a)
        cache._evict()
        assert os.path.exists(path_a) and not os.path.exists(path_b)


class TestMaintenance:
    def test_entries_reports_readable_and_unreadable(self, tmp_path):
        cache = cache_at(tmp_path)
        cache.put("a" * 64, "kind-a", RECORD)
        bad = os.path.join(cache.directory, "zz-bad.json")
        with open(bad, "w") as handle:
            handle.write("garbage")
        infos = {info.path: info for info in cache.entries()}
        assert len(infos) == 2
        good = infos[cache.entry_path("a" * 64, "kind-a")]
        assert good.readable and not good.stale
        assert good.fingerprint == "a" * 64 and good.kind == "kind-a"
        assert good.width == 2 and good.decompositions == 1
        assert infos[bad].stale and not infos[bad].readable

    def test_clean_removes_entries_quarantine_and_temp(self, tmp_path):
        cache = cache_at(tmp_path)
        cache.put("a" * 64, "kind", RECORD)
        cache.put("b" * 64, "kind", RECORD)
        cache.reject("a" * 64, "kind", "poison")
        with open(os.path.join(cache.directory, "x.json.tmp123"), "w") as handle:
            handle.write("partial")
        assert cache.clean() == 3
        assert os.listdir(cache.directory) == []
        assert cache.clean() == 0  # idempotent, empty dir

    def test_size_bytes_sums_entry_files(self, tmp_path):
        cache = cache_at(tmp_path)
        assert cache.size_bytes() == 0
        path = cache.put("a" * 64, "kind", RECORD)
        assert cache.size_bytes() == os.path.getsize(path)

    def test_kind_hash_is_stable_and_short(self):
        assert kind_hash("kind") == kind_hash("kind")
        assert kind_hash("kind") != kind_hash("other")
        assert len(kind_hash("kind")) == 12


class TestResolvePolicy:
    def test_none_disables(self):
        assert resolve_cache(None) is None

    def test_instance_passes_through(self, tmp_path):
        cache = cache_at(tmp_path)
        assert resolve_cache(cache) is cache

    def test_auto_honors_kill_switch(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "env-cache"))
        monkeypatch.setenv(CACHE_OFF_ENV_VAR, "1")
        assert resolve_cache("auto") is None
        monkeypatch.delenv(CACHE_OFF_ENV_VAR)
        resolved = resolve_cache("auto")
        assert resolved is not None
        assert resolved.directory == str(tmp_path / "env-cache")

    def test_explicit_path_ignores_kill_switch(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_OFF_ENV_VAR, "1")
        resolved = resolve_cache(str(tmp_path / "explicit"))
        assert resolved is not None
        assert resolved.directory == str(tmp_path / "explicit")

    def test_default_dir_fallback(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert default_cache_dir() == os.path.join("workloads", ".ctd-cache")

    def test_max_bytes_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV_VAR, "12345")
        assert cache_at(tmp_path).max_bytes == 12345
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV_VAR, "not-a-number")
        assert cache_at(tmp_path).max_bytes == DEFAULT_MAX_BYTES
