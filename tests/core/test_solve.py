"""Unit suite for the solve front door (`repro.core.solve`).

Covers the request contract (validation, canonical serialisation, stable
fingerprints, cache-kind rules), the execute() paths (solve, store, hit,
isomorphic hit, soft-width search, budget truncation) and the trust model:
every cache hit is re-certified, poisoned entries are quarantined and
re-solved, and negative or truncated answers never enter the cache.
"""

import json
import os

import pytest

from repro.core.cache import DecompositionCache
from repro.core.solve import (
    DATA_PREFERENCES,
    SolveRequest,
    execute,
    lookup,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.runtime.budget import Budget


def relabeled_triangle():
    """The triangle query shape under completely different names."""
    return Hypergraph({"ab": ["alpha", "beta"], "bg": ["beta", "gamma"], "ga": ["gamma", "alpha"]})


class TestRequestContract:
    def test_defaults_and_frozen(self, triangle):
        request = SolveRequest(hypergraph=triangle, width=2)
        assert request.mode == "decide"
        with pytest.raises(Exception):
            request.mode = "optimal"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "best"},
            {"constraint": "acyclic"},
            {"preference": "random"},
            {"mode": "decide", "width": None},
            {"width": 0},
            {"mode": "soft-width", "width": 0},
            {"iterations": -1},
            {"limit": 0},
            {"mode": "decide", "constraint": "concov"},
            {"mode": "decide", "preference": "nodecount"},
        ],
    )
    def test_invalid_requests_are_rejected(self, triangle, kwargs):
        spec = {"hypergraph": triangle, "width": 2}
        spec.update(kwargs)
        with pytest.raises(ValueError):
            SolveRequest(**spec)

    def test_payload_round_trip(self, triangle):
        request = SolveRequest(
            hypergraph=triangle,
            mode="enumerate",
            width=2,
            constraint="concov",
            preference="nodecount",
            limit=3,
            data_key="tpcds:scale=1:seed=7:q",
            deadline=1.5,
            label="round-trip",
        )
        clone = SolveRequest.from_payload(
            json.loads(json.dumps(request.to_payload()))
        )
        assert clone == request
        assert clone.fingerprint() == request.fingerprint()

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            "not a dict",
            {},
            {"hypergraph": {"vertices": ["x"]}},
            {"hypergraph": {"edges": {"e": ["x"]}}, "mode": "bogus"},
            {"hypergraph": {"edges": {"e": ["x"]}}, "limit": "many"},
        ],
    )
    def test_malformed_payloads_raise_value_error(self, payload):
        with pytest.raises(ValueError):
            SolveRequest.from_payload(payload)

    def test_fingerprint_ignores_non_semantic_fields(self, triangle):
        base = SolveRequest(hypergraph=triangle, width=2)
        assert base.governed(5.0, 1000).fingerprint() == base.fingerprint()
        relabeled = SolveRequest(hypergraph=triangle, width=2, label="x")
        assert relabeled.fingerprint() == base.fingerprint()
        assert (
            SolveRequest(hypergraph=triangle, width=3).fingerprint()
            != base.fingerprint()
        )

    def test_cache_kind_rules(self, triangle):
        assert SolveRequest(hypergraph=triangle, mode="soft-width").cache_kind() is None
        data_blind = SolveRequest(
            hypergraph=triangle, mode="optimal", width=2, preference="cardinalities"
        )
        assert data_blind.preference in DATA_PREFERENCES
        assert data_blind.cache_kind() is None
        keyed = SolveRequest(
            hypergraph=triangle,
            mode="optimal",
            width=2,
            preference="cardinalities",
            data_key="db:1",
        )
        assert keyed.cache_kind() is not None
        decide = SolveRequest(hypergraph=triangle, width=2)
        optimal = SolveRequest(hypergraph=triangle, mode="optimal", width=2)
        assert decide.cache_kind() != optimal.cache_kind()
        # Caps and labels are non-semantic: same kind.
        assert decide.governed(9.0, 99).cache_kind() == decide.cache_kind()

    def test_degraded_to_decide(self, triangle):
        request = SolveRequest(
            hypergraph=triangle,
            mode="enumerate",
            width=2,
            constraint="concov",
            preference="cardinalities",
            limit=5,
            data_key="db:1",
            deadline=2.0,
            label="full",
        )
        degraded = request.degraded_to_decide()
        assert degraded.mode == "decide"
        assert degraded.constraint is None and degraded.preference is None
        assert degraded.limit == 1 and degraded.data_key is None
        assert degraded.hypergraph is request.hypergraph
        assert degraded.deadline == 2.0  # caps survive degradation


class TestExecute:
    def test_decide_without_cache(self, triangle):
        result = execute(SolveRequest(hypergraph=triangle, width=2), cache=None)
        assert result.decided and result.width == 2
        assert result.decomposition is not None
        assert result.complete
        assert result.cache_status == "off" and result.cache_stats is None

    def test_infeasible_width_is_a_complete_no(self, triangle):
        result = execute(SolveRequest(hypergraph=triangle, width=1), cache=None)
        assert not result.decided and result.width is None
        assert result.complete and not result.decompositions

    def test_store_then_hit(self, triangle, tmp_path):
        store = DecompositionCache(str(tmp_path))
        request = SolveRequest(hypergraph=triangle, width=2)
        first = execute(request, cache=store)
        assert first.cache_status == "stored"
        second = execute(request, cache=store)
        assert second.cache_status == "hit"
        assert store.stats.as_dict()["rejected"] == 0
        assert second.decomposition.bag_multiset() == first.decomposition.bag_multiset()

    def test_isomorphic_hypergraph_hits_with_its_own_names(self, triangle, tmp_path):
        store = DecompositionCache(str(tmp_path))
        execute(SolveRequest(hypergraph=triangle, width=2), cache=store)
        other = relabeled_triangle()
        result = execute(SolveRequest(hypergraph=other, width=2), cache=store)
        assert result.cache_status == "hit"
        for bag in result.decomposition.bags():
            assert bag <= other.vertices

    def test_negative_answers_are_never_cached(self, triangle, tmp_path):
        store = DecompositionCache(str(tmp_path))
        result = execute(SolveRequest(hypergraph=triangle, width=1), cache=store)
        assert not result.decided
        assert result.cache_status == "miss"
        assert store.stats.stores == 0 and store.entries() == []

    def test_truncated_results_are_never_cached(self, triangle, tmp_path):
        store = DecompositionCache(str(tmp_path))
        result = execute(
            SolveRequest(hypergraph=triangle, width=2),
            cache=store,
            budget=Budget(max_work=1),
        )
        assert result.outcome.partial
        assert store.stats.stores == 0 and store.entries() == []

    def test_data_preference_without_key_is_uncacheable(
        self, triangle, triangle_database, triangle_query, tmp_path
    ):
        store = DecompositionCache(str(tmp_path))
        request = SolveRequest(
            hypergraph=triangle_query.hypergraph(),
            mode="optimal",
            width=2,
            preference="cardinalities",
        )
        result = execute(
            request, database=triangle_database, query=triangle_query, cache=store
        )
        assert result.decided
        assert result.cache_status == "uncacheable"
        assert store.entries() == []

    def test_data_preference_needs_database(self, triangle):
        request = SolveRequest(
            hypergraph=triangle, mode="optimal", width=2, preference="cardinalities"
        )
        with pytest.raises(ValueError, match="database"):
            execute(request, cache=None)

    def test_request_caps_become_the_budget(self, triangle):
        result = execute(
            SolveRequest(hypergraph=triangle, width=2, max_work=1), cache=None
        )
        assert result.outcome.partial
        assert result.outcome.max_work == 1


class TestSoftWidth:
    def test_finds_least_width(self, triangle):
        result = execute(SolveRequest(hypergraph=triangle, mode="soft-width"), cache=None)
        assert result.decided and result.width == 2
        assert result.decomposition is not None

    def test_bound_below_answer_is_a_complete_no(self, triangle):
        result = execute(
            SolveRequest(hypergraph=triangle, mode="soft-width", width=1), cache=None
        )
        assert not result.decided and result.width is None and result.complete

    def test_positive_levels_cache_negative_levels_resolve(self, triangle, tmp_path):
        store = DecompositionCache(str(tmp_path))
        first = execute(SolveRequest(hypergraph=triangle, mode="soft-width"), cache=store)
        assert first.width == 2
        # Only the k=2 witness was stored; the k=1 "no" has no certificate.
        assert len(store.entries()) == 1
        second = execute(SolveRequest(hypergraph=triangle, mode="soft-width"), cache=store)
        assert second.width == 2 and second.cache_status == "hit"


class TestCacheTrust:
    def poison(self, store, mutate):
        """Rewrite the single cache entry through ``mutate(record)``."""
        (info,) = store.entries()
        with open(info.path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
        mutate(record)
        with open(info.path, "w", encoding="utf-8") as handle:
            json.dump(record, handle)
        return info.path

    def test_unparseable_entry_is_quarantined_and_resolved(self, triangle, tmp_path):
        store = DecompositionCache(str(tmp_path))
        request = SolveRequest(hypergraph=triangle, width=2)
        execute(request, cache=store)
        (info,) = store.entries()
        with open(info.path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        result = execute(request, cache=store)
        assert result.decided and result.width == 2
        assert result.cache_status == "stored"  # re-solved and re-stored
        assert store.stats.quarantined == 1
        assert any(p.endswith(".corrupt") for p in store.quarantined())

    def test_wrong_bags_fail_certification_and_requarantine(self, triangle, tmp_path):
        store = DecompositionCache(str(tmp_path))
        request = SolveRequest(hypergraph=triangle, width=2)
        execute(request, cache=store)

        def break_bags(record):
            # A syntactically valid record whose CTD no longer covers the
            # hypergraph: certification must catch it, not JSON parsing.
            record["decompositions"] = [{"bags": [[0]], "parents": [None]}]

        self.poison(store, break_bags)
        result = execute(request, cache=store)
        assert result.decided and result.width == 2
        assert result.cache_status == "stored"
        assert store.stats.rejected == 1
        # And the re-stored entry serves correctly again.
        assert execute(request, cache=store).cache_status == "hit"

    def test_out_of_range_canonical_index_is_rejected(self, triangle, tmp_path):
        store = DecompositionCache(str(tmp_path))
        request = SolveRequest(hypergraph=triangle, width=2)
        execute(request, cache=store)

        def break_indices(record):
            record["decompositions"][0]["bags"][0] = [0, 99]

        self.poison(store, break_indices)
        result = execute(request, cache=store)
        assert result.decided
        assert store.stats.rejected == 1


class TestLookup:
    def test_miss_and_disabled_probes(self, triangle, tmp_path):
        request = SolveRequest(hypergraph=triangle, width=2)
        assert lookup(request, cache=None) is None
        assert lookup(request, cache=str(tmp_path)) is None
        assert (
            lookup(SolveRequest(hypergraph=triangle, mode="soft-width"), cache=str(tmp_path))
            is None
        )

    def test_probe_serves_stored_result_without_solving(self, triangle, tmp_path):
        store = DecompositionCache(str(tmp_path))
        request = SolveRequest(hypergraph=triangle, width=2)
        execute(request, cache=store)
        result = lookup(request, cache=store)
        assert result is not None
        assert result.cache_status == "hit" and result.decided and result.width == 2

    def test_probe_quarantines_poison_and_reports_miss(self, triangle, tmp_path):
        store = DecompositionCache(str(tmp_path))
        request = SolveRequest(hypergraph=triangle, width=2)
        execute(request, cache=store)
        (info,) = store.entries()
        with open(info.path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
        record["decompositions"] = [{"bags": [[0]], "parents": [None]}]
        with open(info.path, "w", encoding="utf-8") as handle:
            json.dump(record, handle)
        assert lookup(request, cache=store) is None
        assert store.stats.rejected == 1
        assert not os.path.exists(info.path)
