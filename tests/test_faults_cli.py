"""CLI-level tests for resource governance and cache quarantine.

The governed verbs must print a one-line ``outcome:`` status and exit with
the status' distinct code (0 complete / 124 deadline / 125 budget /
130 interrupted), and ``workloads list --strict`` must surface quarantined
snapshot files.
"""

import io

import pytest

from repro.cli import main
from repro.hypergraph.io import to_hyperbench
from repro.hypergraph.library import four_cycle_query, triangle_hypergraph
from repro.runtime.faults import truncate_file


@pytest.fixture
def triangle_file(tmp_path):
    path = tmp_path / "triangle.hg"
    path.write_text(to_hyperbench(triangle_hypergraph()))
    return str(path)


@pytest.fixture
def four_cycle_file(tmp_path):
    path = tmp_path / "c4.hg"
    path.write_text(to_hyperbench(four_cycle_query()))
    return str(path)


def run_cli(arguments):
    out = io.StringIO()
    code = main(arguments, out=out)
    return code, out.getvalue()


class TestGovernedDecompose:
    def test_generous_budget_is_complete(self, triangle_file):
        code, output = run_cli(
            ["decompose", triangle_file, "-k", "2", "--max-work", "1000000000"]
        )
        assert code == 0
        assert "outcome: complete" in output

    def test_exhausted_budget_exits_125(self, triangle_file):
        code, output = run_cli(
            ["decompose", triangle_file, "-k", "2", "--max-work", "1"]
        )
        assert code == 125
        assert "outcome: budget_exhausted" in output
        assert "inconclusive" in output

    def test_generous_deadline_is_complete(self, triangle_file):
        code, output = run_cli(
            ["decompose", triangle_file, "-k", "2", "--timeout", "3600"]
        )
        assert code == 0
        assert "outcome: complete" in output
        assert "deadline=3600" in output

    def test_ungoverned_run_prints_no_outcome(self, triangle_file):
        code, output = run_cli(["decompose", triangle_file, "-k", "2"])
        assert code == 0
        assert "outcome:" not in output

    def test_infeasible_width_keeps_exit_1_when_complete(self, triangle_file):
        code, output = run_cli(
            ["decompose", triangle_file, "-k", "1", "--max-work", "1000000000"]
        )
        assert code == 1
        assert "no decomposition" in output
        assert "outcome: complete" in output


class TestEnumerateVerb:
    def test_enumerates_ranked_decompositions(self, four_cycle_file):
        code, output = run_cli(["enumerate", four_cycle_file, "-k", "2", "--limit", "3"])
        assert code == 0
        assert "# decomposition 1" in output

    def test_concov_flag(self, four_cycle_file):
        code, output = run_cli(
            ["enumerate", four_cycle_file, "-k", "2", "--limit", "2", "--concov"]
        )
        assert code == 0
        assert "# decomposition 1" in output

    def test_budgeted_enumeration_prints_prefix_and_exits_125(self, four_cycle_file):
        full_code, full_output = run_cli(
            ["enumerate", four_cycle_file, "-k", "2", "--limit", "10"]
        )
        assert full_code == 0
        code, output = run_cli(
            ["enumerate", four_cycle_file, "-k", "2", "--limit", "10", "--max-work", "40"]
        )
        assert code == 125
        assert "outcome: budget_exhausted" in output
        # Whatever was printed is a prefix of the unbudgeted enumeration —
        # or the honest admission that nothing was produced in time.
        printed = output.split("outcome:")[0]
        assert (
            full_output.startswith(printed)
            or "stopped early before the first decomposition" in output
        )

    def test_infeasible_width_exits_1(self, triangle_file):
        code, output = run_cli(["enumerate", triangle_file, "-k", "1"])
        assert code == 1
        assert "no decomposition" in output


class TestGovernedWidth:
    def test_exhausted_width_search_is_undetermined(self, triangle_file):
        code, output = run_cli(["width", triangle_file, "--max-work", "1"])
        assert code == 125
        assert "undetermined" in output
        assert "outcome: budget_exhausted" in output

    def test_generous_budget_finds_width(self, triangle_file):
        code, output = run_cli(["width", triangle_file, "--max-work", "1000000000"])
        assert code == 0
        assert "shw = 2" in output
        assert "outcome: complete" in output

    def test_baseline_measures_note_unbounded(self, triangle_file):
        code, output = run_cli(
            ["width", triangle_file, "--measure", "tw", "--timeout", "60"]
        )
        assert code == 0
        assert "ran unbounded" in output
        assert "tw = 2" in output


class TestInterruptHandling:
    def test_escaped_keyboard_interrupt_exits_130(self, triangle_file, monkeypatch):
        def interrupt(_):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.cli.hypergraph_statistics", interrupt)
        code, output = run_cli(["stats", triangle_file])
        assert code == 130
        assert "interrupted" in output


class TestQuarantineReporting:
    def _build(self, cache):
        return run_cli(
            [
                "workloads", "build", "--workload", "tpcds",
                "--scale", "0.3", "--cache", cache,
            ]
        )

    def _snapshot_path(self, tmp_path):
        return next(
            str(p) for p in (tmp_path / "cache").iterdir() if p.suffix == ".npz"
        )

    def test_strict_list_reports_quarantined_files(self, tmp_path):
        cache = str(tmp_path / "cache")
        assert self._build(cache)[0] == 0
        truncate_file(self._snapshot_path(tmp_path), fraction=0.4)
        # The rebuild quarantines the torn file and writes a fresh one.
        code, output = self._build(cache)
        assert code == 0
        assert "cold build" in output
        code, output = run_cli(["workloads", "list", "--cache", cache])
        assert code == 0  # without --strict quarantine is only reported
        assert "quarantined: " in output
        assert "1 quarantined" in output
        code, output = run_cli(["workloads", "list", "--cache", cache, "--strict"])
        assert code == 1

    def test_clean_removes_quarantined_files(self, tmp_path):
        cache = str(tmp_path / "cache")
        self._build(cache)
        truncate_file(self._snapshot_path(tmp_path), fraction=0.4)
        self._build(cache)
        code, output = run_cli(["workloads", "clean", "--cache", cache])
        assert code == 0
        assert "removed 2" in output
        code, output = run_cli(["workloads", "list", "--cache", cache, "--strict"])
        assert code == 0
        assert "no snapshots" in output
