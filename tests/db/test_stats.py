"""Unit tests for table statistics and the cardinality estimator."""

import pytest

from repro.db.database import Database
from repro.db.query import atom
from repro.db.stats import CardinalityEstimator


@pytest.fixture
def database():
    db = Database()
    db.create_table("R", ["a", "b"], [(i, i % 5) for i in range(50)])
    db.create_table("S", ["b", "c"], [(i % 5, i) for i in range(20)])
    db.create_table("T", ["c", "d"], [(i, i) for i in range(20)])
    return db


@pytest.fixture
def estimator(database):
    return CardinalityEstimator(database)


class TestStatistics:
    def test_row_and_distinct_counts(self, estimator):
        stats = estimator.statistics("R")
        assert stats.row_count == 50
        assert stats.distinct("a") == 50
        assert stats.distinct("b") == 5
        assert stats.distinct("missing") == 1

    def test_statistics_are_cached(self, estimator):
        assert estimator.statistics("R") is estimator.statistics("R")


class TestCardinalityEstimates:
    def test_single_atom_estimate_is_row_count(self, estimator):
        r = atom("R0", "R", {"a": "x", "b": "y"})
        assert estimator.estimate_join_cardinality([r]) == 50

    def test_key_foreign_key_join_estimate(self, estimator):
        r = atom("R0", "R", {"a": "x", "b": "y"})
        s = atom("S0", "S", {"b": "y", "c": "z"})
        # |R| * |S| / max(d_R(b), d_S(b)) = 50 * 20 / 5 = 200.
        assert estimator.estimate_join_cardinality([r, s]) == pytest.approx(200.0)

    def test_estimate_never_below_one(self, estimator):
        r = atom("R0", "R", {"a": "x"})
        t = atom("T0", "T", {"c": "x"})
        assert estimator.estimate_join_cardinality([r, t]) >= 1.0

    def test_empty_atom_list(self, estimator):
        assert estimator.estimate_join_cardinality([]) == 0.0


class TestPlanCost:
    def test_single_atom_cost_is_scan_cost(self, estimator):
        r = atom("R0", "R", {"a": "x", "b": "y"})
        assert estimator.estimate_plan_cost([r]) == pytest.approx(50.0)

    def test_join_cost_exceeds_scan_costs(self, estimator):
        r = atom("R0", "R", {"a": "x", "b": "y"})
        s = atom("S0", "S", {"b": "y", "c": "z"})
        assert estimator.estimate_plan_cost([r, s]) > 70.0

    def test_greedy_join_order_contains_all_atoms(self, estimator):
        atoms = [
            atom("R0", "R", {"a": "x", "b": "y"}),
            atom("S0", "S", {"b": "y", "c": "z"}),
            atom("T0", "T", {"c": "z", "d": "w"}),
        ]
        order = estimator.greedy_join_order(atoms)
        assert {a.alias for a in order} == {"R0", "S0", "T0"}
        # Greedy starts from the smallest relation.
        assert order[0].relation in {"S", "T"}

    def test_semijoin_selectivity_bounds(self, estimator):
        r = atom("R0", "R", {"a": "x", "b": "y"})
        s = atom("S0", "S", {"b": "y", "c": "z"})
        t = atom("T0", "T", {"c": "w", "d": "u"})
        assert 0.0 < estimator.estimate_semijoin_selectivity([r], [s]) <= 1.0
        assert estimator.estimate_semijoin_selectivity([r], [t]) == 1.0
