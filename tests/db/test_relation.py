"""Unit tests for the in-memory relation operators."""

import pytest

from repro.db.relation import Relation, WorkCounter


@pytest.fixture
def r():
    return Relation("R", ["a", "b"], [(1, 10), (2, 20), (3, 30), (1, 11)])


@pytest.fixture
def s():
    return Relation("S", ["b", "c"], [(10, "x"), (20, "y"), (99, "z")])


class TestBasics:
    def test_schema_validation(self):
        with pytest.raises(ValueError):
            Relation("bad", ["a", "a"], [])
        with pytest.raises(ValueError):
            Relation("bad", ["a", "b"], [(1,)])

    def test_cardinality_and_columns(self, r):
        assert len(r) == 4
        assert r.column("a") == [1, 2, 3, 1]
        assert r.distinct_count("a") == 3
        with pytest.raises(KeyError):
            r.column("missing")

    def test_rename(self, r):
        renamed = r.rename("R2", {"a": "x"})
        assert renamed.attributes == ("x", "b")
        assert renamed.rows == r.rows


class TestUnaryOperators:
    def test_project_removes_duplicates(self, r):
        projected = r.project(["a"])
        assert sorted(projected.rows) == [(1,), (2,), (3,)]

    def test_project_counts_work(self, r):
        counter = WorkCounter()
        r.project(["a"], counter=counter)
        assert counter.tuples_read == 4
        assert counter.tuples_written == 3
        assert counter.total == 7

    def test_select(self, r):
        selected = r.select(lambda row: row["a"] == 1)
        assert len(selected) == 2

    def test_distinct(self):
        relation = Relation("D", ["a"], [(1,), (1,), (2,)])
        assert len(relation.distinct()) == 2


class TestJoins:
    def test_natural_join(self, r, s):
        joined = r.natural_join(s)
        assert set(joined.attributes) == {"a", "b", "c"}
        assert sorted(joined.rows) == [(1, 10, "x"), (2, 20, "y")]

    def test_join_is_symmetric_in_content(self, r, s):
        left = {tuple(sorted(zip(("a", "b", "c"), row))) for row in r.natural_join(s).rows}
        right_rel = s.natural_join(r)
        index = [right_rel.attributes.index(a) for a in ("a", "b", "c")]
        right = {
            tuple(sorted(zip(("a", "b", "c"), (row[i] for i in index))))
            for row in right_rel.rows
        }
        assert left == right

    def test_cartesian_product_when_no_shared_attributes(self):
        a = Relation("A", ["x"], [(1,), (2,)])
        b = Relation("B", ["y"], [(3,), (4,), (5,)])
        assert len(a.natural_join(b)) == 6

    def test_semijoin(self, r, s):
        reduced = r.semijoin(s)
        assert sorted(reduced.rows) == [(1, 10), (2, 20)]
        assert reduced.attributes == r.attributes

    def test_semijoin_without_shared_attributes(self, r):
        other = Relation("O", ["z"], [(1,)])
        assert len(r.semijoin(other)) == len(r)
        empty = Relation("E", ["z"], [])
        assert len(r.semijoin(empty)) == 0

    def test_join_work_accounting(self, r, s):
        counter = WorkCounter()
        joined = r.natural_join(s, counter=counter)
        assert counter.tuples_read == len(r) + len(s)
        assert counter.tuples_written == len(joined)


class TestAggregates:
    def test_min_max_count(self, r):
        assert r.aggregate("MIN", "a") == 1
        assert r.aggregate("MAX", "b") == 30
        assert r.aggregate("COUNT", "a") == 4

    def test_empty_relation_aggregates_to_none(self):
        empty = Relation("E", ["a"], [])
        assert empty.aggregate("MIN", "a") is None
        assert empty.aggregate("COUNT", "a") == 0

    def test_unknown_aggregate_rejected(self, r):
        with pytest.raises(ValueError):
            r.aggregate("SUM", "a")
