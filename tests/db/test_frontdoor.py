"""Unit tests for the query front door (`repro.db.frontdoor`).

The cross-layer differential proof lives in
``tests/property/test_property_query_pipeline.py`` and the workload
goldens in ``tests/workloads/test_joblite.py``; here the focus is the
front door's own contract: plan structure, provenance, the
cache-is-never-an-authority trust model for isomorphic shapes, budget
sharing across solve and execution, and the error taxonomy.
"""

import pytest

from repro.core.cache import DecompositionCache
from repro.db.database import Database
from repro.db.frontdoor import plan_query, run_query
from repro.runtime.budget import Budget
from repro.runtime.errors import UserError


@pytest.fixture
def database():
    db = Database()
    db.create_table_columns("R", ["a", "b"], [[1, 2, 3, 3], [10, 20, 30, 31]])
    db.create_table_columns("S", ["b", "c"], [[10, 20, 20, 31], [5, 6, 7, 8]])
    db.create_table_columns("T", ["c", "d"], [[5, 6, 6], [0, 6, 2]])
    return db


TRIANGLE_SQL = (
    "SELECT COUNT(a) FROM R, S, T "
    "WHERE R.b = S.b AND S.c = T.c AND T.d = R.a"
)


class TestPlan:
    def test_plan_records_fingerprint_width_and_node_plans(self, database):
        plan = plan_query("SELECT * FROM R, S WHERE R.b = S.b", database, cache=None)
        assert plan.provenance == "solve"
        assert plan.width == 1
        assert len(plan.fingerprint) == 64 or len(plan.fingerprint) >= 16
        assert plan.node_plans, "lowered Yannakakis plan must be attached"
        described = plan.describe()
        assert "decomposition: width=1 provenance=solve" in described

    def test_isomorphic_shapes_share_a_fingerprint(self, database):
        first = plan_query("SELECT * FROM R, S WHERE R.b = S.b", database, cache=None)
        # Same shape over different tables/columns: S(b,c) joined to T(c,d).
        second = plan_query("SELECT * FROM S, T WHERE S.c = T.c", database, cache=None)
        assert first.fingerprint == second.fingerprint

    def test_explain_does_not_execute(self, database):
        budget = Budget(max_work=10_000)
        plan = plan_query(TRIANGLE_SQL, database, cache=None, budget=budget)
        assert plan.decomposition is not None
        # Only solve work was charged; execution would have added more.
        solve_only = budget.outcome().work
        result = run_query(TRIANGLE_SQL, database, cache=None, budget=budget)
        assert result.outcome.work > solve_only


class TestRows:
    def test_full_rows_are_sorted_and_distinct(self, database):
        result = run_query("SELECT * FROM R, S WHERE R.b = S.b", database, cache=None)
        assert result.rows == sorted(set(result.rows))
        assert result.value == len(result.rows)
        assert result.columns == tuple(sorted(result.columns))

    def test_aggregate_rows_wrap_the_value(self, database):
        result = run_query(
            "SELECT MIN(a) FROM R, S WHERE R.b = S.b", database, cache=None
        )
        assert result.rows == [(result.value,)]
        assert result.columns[0].startswith("min_")

    def test_repeated_variable_within_atom_executes_as_selection(self, database):
        # T.c = T.d within one occurrence: only rows with c == d survive.
        # T has (6, 6) as its only agreeing row; S rows with c == 6 join it.
        result = run_query(
            "SELECT COUNT(b) FROM S, T WHERE T.c = T.d AND S.c = T.c",
            database,
            cache=None,
        )
        assert result.outcome.complete
        assert result.value == 1

    def test_conjunctive_query_object_accepted(self, database):
        from repro.db.sqlish import parse_select_query

        query = parse_select_query(TRIANGLE_SQL, database, name="triangle")
        via_object = run_query(query, database, cache=None)
        via_text = run_query(TRIANGLE_SQL, database, cache=None)
        assert via_object.value == via_text.value
        assert via_object.width == via_text.width == 2


class TestCacheTrust:
    def test_warm_run_hits_recertifies_and_matches(self, database, tmp_path):
        store = DecompositionCache(str(tmp_path))
        cold = run_query(TRIANGLE_SQL, database, cache=store)
        assert cold.provenance == "solve"
        warm = run_query(TRIANGLE_SQL, database, cache=store)
        assert warm.provenance == "cache"
        assert store.stats.hits >= 1
        assert warm.rows == cold.rows and warm.value == cold.value
        assert warm.width == cold.width

    def test_isomorphic_query_served_from_the_same_entry(self, database, tmp_path):
        store = DecompositionCache(str(tmp_path))
        run_query("SELECT * FROM R, S WHERE R.b = S.b", database, cache=store)
        stored = len(store.entries())
        hit = run_query("SELECT * FROM S, T WHERE S.c = T.c", database, cache=store)
        assert hit.provenance == "cache"
        assert len(store.entries()) == stored  # no new entry needed
        # And the mapped decomposition answers correctly for the new query.
        direct = run_query("SELECT * FROM S, T WHERE S.c = T.c", database, cache=None)
        assert hit.rows == direct.rows


class TestErrorsAndBudgets:
    def test_impossible_width_is_a_user_error(self, database):
        # The triangle needs width 2; pinning width=1 must fail loudly.
        with pytest.raises(UserError, match="no decomposition of width <= 1"):
            run_query(TRIANGLE_SQL, database, width=1, cache=None)

    def test_malformed_sql_raises_user_error(self, database):
        from repro.db.sqlish import SqlError

        with pytest.raises(SqlError):
            run_query("SELEKT a FROM R", database, cache=None)

    def test_budget_exhaustion_returns_no_rows_with_honest_counters(self, database):
        budget = Budget(max_work=30)
        result = run_query(TRIANGLE_SQL, database, cache=None, budget=budget)
        assert result.outcome.partial
        assert result.rows is None and result.value is None
        assert result.outcome.work > 0
        assert result.outcome.exit_code == 125

    def test_one_budget_governs_solve_and_execution(self, database):
        # Generous enough for the solve, too tight for the whole execution.
        unbounded = run_query(TRIANGLE_SQL, database, cache=None)
        budget = Budget(max_work=unbounded.execution_work // 2)
        result = run_query(TRIANGLE_SQL, database, cache=None, budget=budget)
        assert result.outcome.partial
        assert result.rows is None
