"""Unit and integration tests for Yannakakis execution and the executors."""

import pytest

from repro.core.candidate_bags import soft_candidate_bags
from repro.core.enumerate import enumerate_ctds
from repro.decompositions.td import TreeDecomposition
from repro.db.executor import BaselineExecutor, DecompositionExecutor
from repro.db.yannakakis import YannakakisExecutor, atom_relation, choose_cover, run_yannakakis
from tests.conftest import brute_force_triangle_count


@pytest.fixture
def triangle_td(triangle_query):
    hypergraph = triangle_query.hypergraph()
    return TreeDecomposition.from_bags(
        hypergraph, [{"x", "y", "z"}], [None]
    )


class TestAtomRelations:
    def test_atom_relation_renames_to_variables(self, triangle_database, triangle_query):
        relation = atom_relation(triangle_database, triangle_query.atom("R"))
        assert set(relation.attributes) == {"x", "y"}
        assert len(relation) == len(triangle_database.relation("R"))

    def test_choose_cover_prefers_connected(self, four_cycle):
        cover = choose_cover(four_cycle, frozenset({"w", "x", "y"}), max_size=2)
        assert len(cover) == 2
        edges = [four_cycle.edge(name) for name in cover]
        assert edges[0].vertices & edges[1].vertices

    def test_choose_cover_empty_bag(self, four_cycle):
        assert choose_cover(four_cycle, frozenset()) == []

    def test_choose_cover_uncoverable_raises(self, four_cycle):
        with pytest.raises(ValueError):
            choose_cover(four_cycle, frozenset({"nope"}), max_size=1)


class TestYannakakis:
    def test_triangle_count_matches_brute_force(
        self, triangle_database, triangle_query, triangle_td
    ):
        run = run_yannakakis(triangle_database, triangle_query, triangle_td)
        assert run.result == brute_force_triangle_count(triangle_database)

    def test_min_aggregate_from_reduced_nodes(self, triangle_database, triangle_query):
        query = triangle_query
        query.aggregate = ("MIN", "x")
        hypergraph = query.hypergraph()
        decomposition = TreeDecomposition.from_bags(
            hypergraph, [{"x", "y", "z"}], [None]
        )
        run = run_yannakakis(triangle_database, query, decomposition)
        # Brute force: the minimal x participating in a triangle.
        expected = min(
            x
            for (x, y) in triangle_database.relation("R").rows
            for (y2, z) in triangle_database.relation("S").rows
            if y2 == y
            for (z2, x2) in triangle_database.relation("T").rows
            if z2 == z and x2 == x
        )
        assert run.result == expected
        materialized = YannakakisExecutor(triangle_database, query).execute(
            decomposition, materialize_result=True
        )
        assert materialized.result == expected

    def test_decomposition_must_cover_every_atom(self, triangle_database, triangle_query):
        hypergraph = triangle_query.hypergraph()
        bad = TreeDecomposition.from_bags(hypergraph, [{"x", "y"}], [None])
        with pytest.raises(ValueError):
            run_yannakakis(triangle_database, triangle_query, bad)

    def test_node_sizes_recorded(self, triangle_database, triangle_query, triangle_td):
        run = run_yannakakis(triangle_database, triangle_query, triangle_td)
        assert set(run.node_sizes) == {triangle_td.tree.root.node_id}
        assert run.max_intermediate >= max(run.node_sizes.values())
        assert run.work > 0


class TestExecutorsAgree:
    def test_executors_agree_on_triangle(self, triangle_database, triangle_query):
        hypergraph = triangle_query.hypergraph()
        decomposition = TreeDecomposition.from_bags(
            hypergraph, [{"x", "y", "z"}], [None]
        )
        decomposition_result = DecompositionExecutor(
            triangle_database, triangle_query
        ).execute(decomposition)
        baseline_result = BaselineExecutor(triangle_database, triangle_query).execute()
        assert decomposition_result.result == baseline_result.result

    def test_all_ctds_give_same_answer_on_tpcds(self):
        from repro.workloads.tpcds import build_tpcds_database, tpcds_query_qds

        database = build_tpcds_database(scale=0.1)
        query = tpcds_query_qds(database)
        hypergraph = query.hypergraph()
        decompositions = enumerate_ctds(
            hypergraph, soft_candidate_bags(hypergraph, 2), limit=4
        )
        assert decompositions
        executor = DecompositionExecutor(database, query)
        results = {executor.execute(d).result for d in decompositions}
        baseline = BaselineExecutor(database, query).execute()
        assert results == {baseline.result}

    def test_metrics_fields(self, triangle_database, triangle_query):
        baseline = BaselineExecutor(triangle_database, triangle_query).execute()
        assert baseline.work > 0
        assert baseline.max_intermediate >= 0
        assert baseline.wall_time >= 0.0
        assert "work" in repr(baseline)
