"""Unit tests for the cost functions of Appendix C.2."""

import pytest

from repro.core.candidate_bags import soft_candidate_bags
from repro.core.enumerate import enumerate_ctds
from repro.db.cost import (
    CardinalityCostModel,
    EstimateCostModel,
    cardinality_cost,
    estimate_cost,
    make_cost_preference,
)
from repro.db.database import Database
from repro.db.query import Atom, ConjunctiveQuery
from repro.decompositions.td import TreeDecomposition
from repro.workloads.tpcds import build_tpcds_database, tpcds_query_qds


@pytest.fixture(scope="module")
def tpcds():
    database = build_tpcds_database(scale=0.1)
    query = tpcds_query_qds(database)
    return database, query


def decompositions_for(query, limit=4):
    hypergraph = query.hypergraph()
    return enumerate_ctds(hypergraph, soft_candidate_bags(hypergraph, 2), limit=limit)


class TestCardinalityCostModel:
    def test_single_atom_bags_cost_nothing(self, triangle_database, triangle_query):
        model = CardinalityCostModel(triangle_query, triangle_database)
        assert model.node_cost(frozenset({"x", "y"})) == 0.0

    def test_multi_atom_bag_cost_positive(self, triangle_database, triangle_query):
        model = CardinalityCostModel(triangle_query, triangle_database)
        assert model.node_cost(frozenset({"x", "y", "z"})) > 0.0

    def test_bag_cardinality_matches_actual_join(self, triangle_database, triangle_query):
        model = CardinalityCostModel(triangle_query, triangle_database)
        # A single-atom bag is just the projection of that atom's relation.
        assert model.bag_cardinality(frozenset({"x", "y"})) == len(
            triangle_database.relation("R").project(["a", "b"])
        )
        # The full bag joins only its λ-cover (two of the three atoms), so it
        # is at least as large as the actual triangle count.
        from tests.conftest import brute_force_triangle_count

        assert model.bag_cardinality(
            frozenset({"x", "y", "z"})
        ) >= brute_force_triangle_count(triangle_database)

    def test_bag_cardinality_is_cached(self, triangle_database, triangle_query):
        model = CardinalityCostModel(triangle_query, triangle_database)
        bag = frozenset({"x", "y", "z"})
        assert model.bag_cardinality(bag) == model.bag_cardinality(bag)

    def test_reduce_attributes_exclude_primary_keys(self, tpcds):
        database, query = tpcds
        model = CardinalityCostModel(query, database)
        decomposition = decompositions_for(query, limit=1)[0]
        root = decomposition.tree.root
        reduce_attrs = model.reduce_attributes(decomposition, root)
        assert reduce_attrs <= decomposition.bag(root)

    def test_decomposition_cost_positive_and_deterministic(self, tpcds):
        database, query = tpcds
        decomposition = decompositions_for(query, limit=1)[0]
        first = cardinality_cost(decomposition, query, database)
        second = cardinality_cost(decomposition, query, database)
        assert first == second > 0


class TestEstimateCostModel:
    def test_single_atom_bags_cost_nothing(self, triangle_database, triangle_query):
        model = EstimateCostModel(triangle_query, triangle_database)
        assert model.node_cost(frozenset({"x", "y"})) == 0.0

    def test_estimate_cost_positive(self, tpcds):
        database, query = tpcds
        decomposition = decompositions_for(query, limit=1)[0]
        assert estimate_cost(decomposition, query, database) > 0

    def test_semijoin_extra_cost_at_least_one(self, triangle_database, triangle_query):
        model = EstimateCostModel(triangle_query, triangle_database)
        assert model._semijoin_extra_cost(frozenset({"x", "y"}), frozenset({"y", "z"})) >= 1.0

    def test_semijoin_extra_cost_depends_on_the_child_bag(self):
        # Equation (6): the semi-join term is C(J_p ⋉ J_c) − C(J_p) − C(J_c),
        # so two different children of the same parent must be able to yield
        # different extra costs.  Regression test for the bug where the
        # child bag was ignored and the term degenerated to the parent's
        # join cardinality.
        database = Database()
        database.create_table("R", ["a", "b"], [(i, i % 3) for i in range(30)])
        database.create_table("S", ["b", "c"], [(i % 3, i) for i in range(200)])
        database.create_table("T", ["c", "d"], [(i, i) for i in range(5)])
        query = ConjunctiveQuery(
            atoms=[
                Atom("R", "R", ("a", "b"), ("x", "y")),
                Atom("S", "S", ("b", "c"), ("y", "z")),
                Atom("T", "T", ("c", "d"), ("z", "w")),
            ],
            name="path",
        )
        model = EstimateCostModel(query, database)
        parent = frozenset({"y", "z"})
        small_child = frozenset({"z", "w"})
        large_child = frozenset({"x", "y"})
        small_cost = model._semijoin_extra_cost(parent, small_child)
        large_cost = model._semijoin_extra_cost(parent, large_child)
        assert small_cost >= 1.0 and large_cost >= 1.0
        assert small_cost != large_cost

    def test_estimate_preference_is_monotone(self, triangle_database, triangle_query):
        preference = make_cost_preference("estimates", triangle_query, triangle_database)
        assert preference.monotone
        model = EstimateCostModel(triangle_query, triangle_database)
        decomposition = TreeDecomposition.from_bags(
            triangle_query.hypergraph(),
            [{"x", "y", "z"}, {"x", "y"}],
            [None, 0],
        )
        assert preference.key(decomposition) == model.decomposition_cost(decomposition)


class TestCostPreferences:
    def test_make_cost_preference_kinds(self, tpcds):
        database, query = tpcds
        decomposition = decompositions_for(query, limit=1)[0]
        for kind in ("estimates", "cardinalities"):
            preference = make_cost_preference(kind, query, database)
            assert preference.key(decomposition) > 0
        with pytest.raises(ValueError):
            make_cost_preference("bogus", query, database)

    def test_preference_orders_decompositions_consistently(self, tpcds):
        database, query = tpcds
        decompositions = decompositions_for(query, limit=4)
        preference = make_cost_preference("cardinalities", query, database)
        keys = [preference.key(d) for d in decompositions]
        assert all(isinstance(k, float) for k in keys)

    def test_costs_differ_between_decompositions(self, tpcds):
        database, query = tpcds
        decompositions = decompositions_for(query, limit=6)
        costs = {round(cardinality_cost(d, query, database), 3) for d in decompositions}
        assert len(costs) > 1
