"""Unit tests for the SQL-ish parser."""

import pytest

from repro.db.database import Database
from repro.db.sqlish import SqlError, parse_select_query
from repro.runtime.errors import UserError


@pytest.fixture
def schema():
    database = Database()
    database.create_table("R", ["a", "b"], [(1, 2)])
    database.create_table("S", ["b", "c"], [(2, 3)])
    database.create_table("T", ["c", "a"], [(3, 1)])
    database.create_table("E", ["s", "d"], [(1, 2)])
    return database


class TestBasicParsing:
    def test_comma_join_with_unqualified_aggregate_column(self, schema):
        query = parse_select_query(
            "SELECT MIN(a) FROM R, S WHERE R.b = S.b", schema
        )
        assert len(query.atoms) == 2
        assert query.aggregate[0] == "MIN"
        # R.b and S.b are merged into one variable; "a" resolves to R.a.
        r_atom = query.atom("R")
        s_atom = query.atom("S")
        assert r_atom.variable_of("b") == s_atom.variable_of("b")
        assert query.aggregate[1] == r_atom.variable_of("a")

    def test_qualified_columns_and_aliases(self, schema):
        query = parse_select_query(
            "SELECT MAX(e1.d) FROM E AS e1, E AS e2 WHERE e1.d = e2.s", schema
        )
        assert {atom.alias for atom in query.atoms} == {"e1", "e2"}
        assert query.atom("e1").relation == "E"
        assert query.atom("e1").variable_of("d") == query.atom("e2").variable_of("s")

    def test_join_on_syntax(self, schema):
        query = parse_select_query(
            "SELECT MIN(R.a) FROM R JOIN S ON R.b = S.b JOIN T ON S.c = T.c", schema
        )
        assert len(query.atoms) == 3
        hypergraph = query.hypergraph()
        assert hypergraph.num_edges() == 3

    def test_aggregate_variable_joins_equivalence_class(self, schema):
        query = parse_select_query(
            "SELECT MIN(R.a) FROM R, T WHERE R.a = T.a", schema
        )
        _, variable = query.aggregate
        assert query.atom("R").variable_of("a") == variable
        assert query.atom("T").variable_of("a") == variable


class TestErrors:
    def test_non_aggregate_query_rejected(self, schema):
        with pytest.raises(ValueError):
            parse_select_query("SELECT a FROM R", schema)

    def test_unknown_column_rejected(self, schema):
        with pytest.raises(ValueError):
            parse_select_query("SELECT MIN(zzz) FROM R", schema)

    def test_ambiguous_column_rejected(self, schema):
        # "b" exists in both R and S.
        with pytest.raises(ValueError):
            parse_select_query("SELECT MIN(a) FROM R, S WHERE b = c AND a = b", schema)

    def test_duplicate_alias_rejected(self, schema):
        with pytest.raises(ValueError):
            parse_select_query("SELECT MIN(a) FROM R AS x, S AS x WHERE x.b = x.b", schema)


class TestHardenedDialect:
    """Regression tests for the front-door parser hardening."""

    def test_sql_error_is_both_value_error_and_user_error(self, schema):
        with pytest.raises(SqlError) as excinfo:
            parse_select_query("SELECT MIN(a) FROM R JOIN S", schema)
        assert isinstance(excinfo.value, ValueError)
        assert isinstance(excinfo.value, UserError)
        assert excinfo.value.exit_code == 2

    def test_quoted_identifiers(self, schema):
        query = parse_select_query(
            'SELECT MIN("a") FROM "R" JOIN `S` ON "R"."b" = `S`.`b`', schema
        )
        assert len(query.atoms) == 2
        assert query.atom("R").variable_of("b") == query.atom("S").variable_of("b")

    def test_inner_join_and_trailing_semicolon(self, schema):
        query = parse_select_query(
            "SELECT MIN(a) FROM R INNER JOIN S ON R.b = S.b;", schema
        )
        assert len(query.atoms) == 2

    def test_join_without_on_rejected(self, schema):
        with pytest.raises(SqlError, match="ON"):
            parse_select_query("SELECT MIN(a) FROM R JOIN S", schema)

    def test_unknown_table_is_sql_error_not_crash(self, schema):
        with pytest.raises(SqlError, match="nowhere"):
            parse_select_query("SELECT MIN(a) FROM nowhere", schema)

    def test_duplicate_alias_message_names_both_tables(self, schema):
        with pytest.raises(SqlError, match="R") as excinfo:
            parse_select_query(
                "SELECT MIN(a) FROM R AS x, S AS x WHERE x.b = x.b", schema
            )
        assert "S" in str(excinfo.value)

    def test_self_join_via_distinct_aliases(self, schema):
        query = parse_select_query(
            "SELECT COUNT(e1.s) FROM E AS e1 JOIN E AS e2 ON e1.d = e2.s",
            schema,
        )
        assert [atom.relation for atom in query.atoms] == ["E", "E"]
        assert query.atom("e1").variable_of("d") == query.atom("e2").variable_of("s")

    def test_unknown_alias_qualifier_rejected(self, schema):
        with pytest.raises(SqlError, match="zz"):
            parse_select_query("SELECT MIN(a) FROM R WHERE zz.b = R.a", schema)

    def test_column_missing_from_aliased_table_rejected(self, schema):
        with pytest.raises(SqlError, match="c"):
            parse_select_query("SELECT MIN(R.c) FROM R", schema)

    def test_ambiguous_unqualified_column_names_candidates(self, schema):
        # "c" exists in both S and T.
        with pytest.raises(SqlError) as excinfo:
            parse_select_query("SELECT MIN(c) FROM S, T WHERE S.b = T.a", schema)
        message = str(excinfo.value)
        assert "S" in message and "T" in message

    def test_constants_rejected(self, schema):
        with pytest.raises(SqlError, match="constant"):
            parse_select_query("SELECT MIN(a) FROM R WHERE R.b = 5", schema)

    @pytest.mark.parametrize(
        "clause",
        [
            "SELECT MIN(a) FROM R LEFT JOIN S ON R.b = S.b",
            "SELECT MIN(a) FROM R, S WHERE R.b = S.b GROUP BY a",
            "SELECT MIN(a) FROM R, S WHERE R.b = S.b ORDER BY a",
            "SELECT MIN(a) FROM R, S WHERE R.b = S.b LIMIT 5",
            "SELECT MIN(a) FROM R, S WHERE R.b = S.b OR R.a = S.c",
            "SELECT MIN(a) FROM R, S WHERE R.b > S.b",
            "SELECT MIN(a) FROM R, S WHERE R.b != S.b",
            "SELECT MIN(a) FROM R WHERE R.b IN (SELECT b FROM S)",
            "SELECT MIN(a) FROM R WHERE R.b LIKE 'x'",
            "SELECT DISTINCT MIN(a) FROM R",
            "SELECT MIN(a) FROM (SELECT b FROM S) AS sub",
        ],
    )
    def test_unsupported_constructs_rejected(self, schema, clause):
        with pytest.raises(SqlError):
            parse_select_query(clause, schema)

    def test_select_star_full_join(self, schema):
        query = parse_select_query("SELECT * FROM R, S WHERE R.b = S.b", schema)
        assert query.aggregate is None
        # Every column of both tables becomes a variable; the join columns
        # share one class: {a, b=b, c} -> 3 variables.
        assert query.hypergraph().num_vertices() == 3

    def test_within_table_equality_repeats_variable(self, schema):
        query = parse_select_query(
            "SELECT MIN(E.s) FROM E, R WHERE E.s = E.d AND E.s = R.a", schema
        )
        e_atom = query.atom("E")
        assert e_atom.variable_of("s") == e_atom.variable_of("d")


class TestPaperQueries:
    def test_tpcds_query_parses(self):
        from repro.workloads.tpcds import QDS_SQL, build_tpcds_database

        database = build_tpcds_database(scale=0.05)
        query = parse_select_query(QDS_SQL, database, name="q_ds")
        assert len(query.atoms) == 5
        hypergraph = query.hypergraph()
        assert hypergraph.num_edges() == 5
        assert hypergraph.num_vertices() == 4

    def test_hetionet_queries_parse(self):
        from repro.workloads.hetionet import HETIONET_QUERY_SQL, build_hetionet_database, hetionet_query

        database = build_hetionet_database(scale=0.1)
        expected_atoms = {"q_hto": 7, "q_hto2": 7, "q_hto3": 4, "q_hto4": 6}
        for name, count in expected_atoms.items():
            query = hetionet_query(database, name)
            assert len(query.atoms) == count
        with pytest.raises(KeyError):
            hetionet_query(database, "q_unknown")

    def test_lsqb_query_parses(self):
        from repro.workloads.lsqb import QLB_SQL, build_lsqb_database

        database = build_lsqb_database(scale=0.1)
        query = parse_select_query(QLB_SQL, database, name="q_lb")
        assert len(query.atoms) == 6
        # Table 1 reports |H| = 6 for q_lb.
        assert query.hypergraph().num_edges() == 6
