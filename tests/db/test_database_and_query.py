"""Unit tests for the database catalogue and conjunctive queries."""

import pytest

from repro.db.database import Database
from repro.db.query import Atom, ConjunctiveQuery, atom


class TestDatabase:
    def test_create_and_lookup(self):
        database = Database()
        database.create_table("R", ["a", "b"], [(1, 2)], primary_key="a")
        assert "R" in database
        assert database.relation("R").cardinality() == 1
        assert database.primary_key("R") == "a"
        assert database.primary_key("missing") is None
        assert database.relation_names() == ["R"]
        assert database.total_rows() == 1

    def test_duplicate_relation_rejected(self):
        database = Database()
        database.create_table("R", ["a"], [])
        with pytest.raises(ValueError):
            database.create_table("R", ["a"], [])

    def test_bad_primary_key_rejected(self):
        database = Database()
        with pytest.raises(ValueError):
            database.create_table("R", ["a"], [], primary_key="nope")

    def test_missing_relation_raises(self):
        with pytest.raises(KeyError):
            Database().relation("ghost")


class TestAtoms:
    def test_atom_bindings(self):
        a = atom("R0", "R", {"a": "x", "b": "y"})
        assert a.variable_of("a") == "x"
        assert a.attribute_of("y") == "b"

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Atom("R0", "R", ("a", "b"), ("x",))


class TestConjunctiveQuery:
    def test_unique_aliases_required(self):
        a = atom("R0", "R", {"a": "x"})
        with pytest.raises(ValueError):
            ConjunctiveQuery(atoms=[a, a])

    def test_variables_in_order_of_first_occurrence(self, triangle_query):
        assert triangle_query.variables() == ["x", "y", "z"]

    def test_hypergraph_extraction(self, triangle_query):
        hypergraph = triangle_query.hypergraph()
        assert hypergraph.num_edges() == 3
        assert hypergraph.edge("R").vertices == frozenset({"x", "y"})
        assert hypergraph.vertices == frozenset({"x", "y", "z"})

    def test_atom_lookup(self, triangle_query):
        assert triangle_query.atom("S").relation == "S"
        with pytest.raises(KeyError):
            triangle_query.atom("missing")

    def test_partition_labels(self, triangle_query):
        labels = triangle_query.partition_labels({"R": "p1", "S": "p2", "T": "p1"})
        assert labels == {"R": "p1", "S": "p2", "T": "p1"}

    def test_self_join_hypergraph_has_one_edge_per_alias(self):
        query = ConjunctiveQuery(
            atoms=[
                atom("E0", "E", {"s": "x", "d": "y"}),
                atom("E1", "E", {"s": "y", "d": "z"}),
            ]
        )
        assert query.hypergraph().num_edges() == 2
